module E = Anyseq_staged.Expr
module Pe = Anyseq_staged.Pe

(* Hindley-Milner-lite: two base types, no functions-as-values, so
   unification needs no occurs check. *)
type ty = TInt | TBool | TVar of tv ref
and tv = Unbound of int | Link of ty

let counter = ref 0

let fresh () =
  incr counter;
  TVar (ref (Unbound !counter))

let rec repr = function
  | TVar ({ contents = Link t } as r) ->
      let t' = repr t in
      r := Link t';
      t'
  | t -> t

let ty_to_string t =
  match repr t with TInt -> "int" | TBool -> "bool" | TVar _ -> "unknown"

let unify a b =
  match (repr a, repr b) with
  | TInt, TInt | TBool, TBool -> Ok ()
  | TVar r, t | t, TVar r ->
      r := Link t;
      Ok ()
  | ta, tb ->
      Error (Printf.sprintf "expected %s, got %s" (ty_to_string ta) (ty_to_string tb))

let trunc s = if String.length s > 60 then String.sub s 0 57 ^ "..." else s
let snippet e = trunc (E.to_string e)

type ctx = {
  mutable findings : Findings.t list;
  sigs : (string, ty list * ty) Hashtbl.t;
  inputs : (string, ty) Hashtbl.t;  (* free vars of the entry = runtime inputs *)
}

let report ctx ?(severity = Findings.Error) ~where msg =
  ctx.findings <- Findings.make ~severity ~pass:"typecheck" ~where msg :: ctx.findings

let unify_or_report ctx ~where ~at a b =
  match unify a b with
  | Ok () -> ()
  | Error msg -> report ctx ~where (Printf.sprintf "%s in %s" msg (snippet at))

(* [check ctx ~where ~allow_free scope e] infers a type for [e], pushing
   findings instead of failing; on an error the subexpression gets a fresh
   type variable so one mistake does not cascade. [allow_free] distinguishes
   the entry expression (free variables are runtime inputs) from function
   bodies (free variables are bugs — Compile rejects them). *)
let rec check ctx ~where ~allow_free scope e : ty =
  let recur = check ctx ~where ~allow_free in
  let want t at sub =
    let ty = recur scope sub in
    unify_or_report ctx ~where ~at t ty
  in
  match e with
  | E.Int _ -> TInt
  | E.Bool _ -> TBool
  | E.Var v -> (
      match List.assoc_opt v scope with
      | Some t -> t
      | None ->
          if allow_free then (
            match Hashtbl.find_opt ctx.inputs v with
            | Some t -> t
            | None ->
                let t = fresh () in
                Hashtbl.add ctx.inputs v t;
                t)
          else (
            report ctx ~where (Printf.sprintf "unbound variable %s" v);
            fresh ()))
  | E.Let (v, rhs, body) ->
      let trhs = recur scope rhs in
      recur ((v, trhs) :: scope) body
  | E.If (c, t, f) ->
      want TBool e c;
      let tt = recur scope t and tf = recur scope f in
      unify_or_report ctx ~where ~at:e tt tf;
      tt
  | E.Binop (op, a, b) -> (
      match op with
      | E.Add | E.Sub | E.Mul | E.Div | E.Max | E.Min ->
          want TInt e a;
          want TInt e b;
          TInt
      | E.Lt | E.Le ->
          want TInt e a;
          want TInt e b;
          TBool
      | E.Eq | E.Ne ->
          (* Polymorphic comparison, but both sides must agree. *)
          let ta = recur scope a and tb = recur scope b in
          unify_or_report ctx ~where ~at:e ta tb;
          TBool
      | E.And | E.Or ->
          want TBool e a;
          want TBool e b;
          TBool)
  | E.Neg a ->
      want TInt e a;
      TInt
  | E.Read (_, idx) ->
      want TInt e idx;
      TInt
  | E.Call (fname, args) -> (
      let targs = List.map (recur scope) args in
      match Hashtbl.find_opt ctx.sigs fname with
      | None ->
          report ctx ~where (Printf.sprintf "unknown function %s" fname);
          fresh ()
      | Some (params, result) ->
          if List.length params <> List.length targs then (
            report ctx ~where
              (Printf.sprintf "arity mismatch calling %s: expected %d arguments, got %d"
                 fname (List.length params) (List.length targs));
            fresh ())
          else (
            List.iter2 (fun p a -> unify_or_report ctx ~where ~at:e p a) params targs;
            result))

let make_ctx fns =
  let ctx = { findings = []; sigs = Hashtbl.create 8; inputs = Hashtbl.create 8 } in
  List.iter
    (fun (f : E.fn) ->
      if Hashtbl.mem ctx.sigs f.E.name then
        report ctx ~where:f.E.name "duplicate function definition"
      else Hashtbl.add ctx.sigs f.E.name (List.map (fun _ -> fresh ()) f.E.params, fresh ()))
    fns;
  ctx

let check_fn ctx (f : E.fn) =
  let params, result = Hashtbl.find ctx.sigs f.E.name in
  let scope = List.combine f.E.params params in
  let tbody = check ctx ~where:f.E.name ~allow_free:false scope f.E.body in
  unify_or_report ctx ~where:f.E.name ~at:f.E.body tbody result

let check_filter ctx (f : E.fn) =
  match f.E.filter with
  | E.Always | E.Never -> ()
  | E.When_static names ->
      List.iter
        (fun n ->
          if not (List.mem n f.E.params) then
            report ctx ~where:f.E.name
              (Printf.sprintf "filter When_static mentions %s, which is not a parameter" n))
        names

let check_program program =
  let ctx = make_ctx program in
  List.iter
    (fun f ->
      check_filter ctx f;
      if Hashtbl.mem ctx.sigs f.E.name then check_fn ctx f)
    program;
  List.rev ctx.findings

let check_residual ?(expect_int_entry = true) (r : Pe.residual) =
  let ctx = make_ctx r.Pe.fns in
  List.iter (fun f -> if Hashtbl.mem ctx.sigs f.E.name then check_fn ctx f) r.Pe.fns;
  let tentry = check ctx ~where:"entry" ~allow_free:true [] r.Pe.entry in
  if expect_int_entry then
    (match unify tentry TInt with
    | Ok () -> ()
    | Error _ -> report ctx ~where:"entry" "kernel entry returns a boolean, expected int");
  List.rev ctx.findings
