module E = Anyseq_staged.Expr
module Pe = Anyseq_staged.Pe
module Sset = Set.Make (String)

type bt = Static | Dynamic

let bt_to_string = function Static -> "static" | Dynamic -> "dynamic"
let join a b = if a = Static && b = Static then Static else Dynamic

(* [go] under-approximates folding: [Static] means the online partial
   evaluator is guaranteed to reduce the expression to a literal (or to
   fail with a PE-time error such as division by a static zero — in which
   case no residual exists and the claim is vacuous). Unfold decisions
   mirror Pe's filter semantics exactly; recursion through [visiting] is
   conservatively dynamic, since without concrete values we cannot see the
   decreasing argument that makes pow-style unfolding bottom out. *)
let rec go ~program ~statics ~sarrays ~visiting env e : bt =
  let recur = go ~program ~statics ~sarrays ~visiting in
  match e with
  | E.Int _ | E.Bool _ -> Static
  | E.Var v -> (
      match List.assoc_opt v env with
      | Some bt -> bt
      | None -> if Sset.mem v statics then Static else Dynamic)
  | E.Let (v, rhs, body) ->
      let b = recur env rhs in
      recur ((v, b) :: env) body
  | E.If (c, t, f) -> join (recur env c) (join (recur env t) (recur env f))
  | E.Binop (_, a, b) -> join (recur env a) (recur env b)
  | E.Neg a -> recur env a
  | E.Read (arr, idx) -> if List.mem arr sarrays then recur env idx else Dynamic
  | E.Call (fname, args) -> (
      let abts = List.map (recur env) args in
      match E.lookup_fn program fname with
      | None -> Dynamic
      | Some fn when List.length fn.E.params <> List.length args -> Dynamic
      | Some fn ->
          let bound = List.combine fn.E.params abts in
          let unfold =
            match fn.E.filter with
            | E.Always -> true
            | E.Never -> false
            | E.When_static names ->
                List.for_all (fun n -> List.assoc_opt n bound = Some Static) names
          in
          if (not unfold) || Sset.mem fname visiting then Dynamic
          else
            go ~program ~statics ~sarrays
              ~visiting:(Sset.add fname visiting)
              bound fn.E.body)

let classify ?(program = []) ?(static_vars = []) ?(static_arrays = []) e =
  go ~program ~statics:(Sset.of_list static_vars) ~sarrays:static_arrays
    ~visiting:Sset.empty [] e

let trunc s = if String.length s > 60 then String.sub s 0 57 ^ "..." else s

let is_literal = function E.Int _ | E.Bool _ -> true | _ -> false

(* Walk a residual expression looking for specialization leftovers: a
   mention of a static configuration variable (Pe substitutes those away),
   or a maximal non-literal subtree BTA classifies as static (Pe folds
   those to literals). Bound variables shadow static names, and subtrees
   already reported static are not descended into. *)
let check_expr ~program ~statics ~sarrays ~where acc e =
  let classify_in bound e =
    let env = List.map (fun v -> (v, Dynamic)) (Sset.elements bound) in
    go ~program ~statics ~sarrays ~visiting:Sset.empty env e
  in
  let finding msg = Findings.make ~pass:"bta" ~where msg in
  let rec walk bound acc e =
    if (not (is_literal e)) && classify_in bound e = Static then
      finding
        (Printf.sprintf "foldable subexpression survived specialization: %s"
           (trunc (E.to_string e)))
      :: acc
    else
      match e with
      | E.Int _ | E.Bool _ -> acc
      | E.Var v ->
          if Sset.mem v statics && not (Sset.mem v bound) then
            finding (Printf.sprintf "static configuration variable %s survived in residual" v)
            :: acc
          else acc
      | E.Let (v, rhs, body) -> walk (Sset.add v bound) (walk bound acc rhs) body
      | E.If (a, b, c) -> walk bound (walk bound (walk bound acc a) b) c
      | E.Binop (_, a, b) -> walk bound (walk bound acc a) b
      | E.Neg a -> walk bound acc a
      | E.Read (_, i) -> walk bound acc i
      | E.Call (_, args) -> List.fold_left (walk bound) acc args
  in
  walk Sset.empty acc e

let check_residual ?(static_vars = []) ?(static_arrays = []) (r : Pe.residual) =
  let statics = Sset.of_list static_vars in
  let program = r.Pe.fns in
  let acc =
    check_expr ~program ~statics ~sarrays:static_arrays ~where:"entry" [] r.Pe.entry
  in
  let acc =
    List.fold_left
      (fun acc (f : E.fn) ->
        (* Residual function parameters are runtime inputs: dynamic. *)
        let statics = Sset.diff statics (Sset.of_list f.E.params) in
        check_expr ~program ~statics ~sarrays:static_arrays ~where:f.E.name acc f.E.body)
      acc r.Pe.fns
  in
  List.rev acc
