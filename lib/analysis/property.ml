module Scheme = Anyseq_scoring.Scheme
module Substitution = Anyseq_bio.Substitution
module Gaps = Anyseq_bio.Gaps
module Alphabet = Anyseq_bio.Alphabet

type unit_cost_cert = {
  uc_match : int;
  uc_mismatch : int;
  uc_extend : int;
  uc_scale : int;
  uc_drift : int;
}

type score_bounds_cert = { sb_max_len : int; sb_lo : int; sb_hi : int; sb_bits : int }

type cert =
  | Unit_cost of unit_cost_cert
  | Affine_reduces_to_linear of { extend : int }
  | Symmetric
  | Score_bounds of score_bounds_cert

type report = { scheme_name : string; certs : cert list }

let default_max_len = 1_000_000

(* ------------------------------------------------------------------ *)
(* Abstract interpretation of the substitution function: the alphabet   *)
(* is finite, so "for all residues" is an exhaustive sweep — the        *)
(* machine-checked part. Nothing here reads the scheme's name.          *)
(* ------------------------------------------------------------------ *)

(* σ restricted to the diagonal / off-diagonal: constant or not. A dna5
   wildcard scheme fails the diagonal sweep (σ(N,N) = mismatch), which is
   exactly right — N≠N pairs are not matches, so no unit-cost conversion
   exists for it. *)
let semantically_simple scheme =
  let asize = Alphabet.size (Scheme.alphabet scheme) in
  if asize < 2 then None
  else begin
    let sigma = Scheme.subst_score scheme in
    let ma = sigma 0 0 and mi = sigma 0 1 in
    let ok = ref true in
    for q = 0 to asize - 1 do
      for s = 0 to asize - 1 do
        let expect = if q = s then ma else mi in
        if sigma q s <> expect then ok := false
      done
    done;
    if !ok then Some (ma, mi) else None
  end

let is_symmetric scheme =
  let asize = Alphabet.size (Scheme.alphabet scheme) in
  let sigma = Scheme.subst_score scheme in
  let ok = ref true in
  for q = 0 to asize - 1 do
    for s = q + 1 to asize - 1 do
      if sigma q s <> sigma s q then ok := false
    done
  done;
  !ok

(* Gap shape: the effective linear extend penalty, when one exists. An
   affine model with open = 0 is semantically linear (the E/F recurrences
   collapse to the linear ones value-for-value). *)
let linear_extend gap =
  match gap with
  | Gaps.Linear { extend } -> Some (extend, false)
  | Gaps.Affine { open_ = 0; extend } -> Some (extend, true)
  | Gaps.Affine _ -> None

(* The unit-cost equivalence condition — see the .mli derivation. *)
let unit_cost_of scheme =
  match (semantically_simple scheme, linear_extend scheme.Scheme.gap) with
  | Some (ma, mi), Some (ge, _) ->
      let scale = mi + (2 * ge) in
      if ma = (2 * mi) + (2 * ge) && scale > 0 then
        Some { uc_match = ma; uc_mismatch = mi; uc_extend = ge; uc_scale = scale;
               uc_drift = scale - ge }
      else None
  | _ -> None

(* Interval analysis over length-bounded inputs. For |q|, |s| <= L every
   global/semiglobal/local score lies within:
     hi = L * max(0, max σ)            (at most L scored pairs, gaps only
                                        subtract, local clamps at 0)
     lo = L * min(0, min σ) − cost of gapping both sequences entirely.
   Sound over-approximation — a certificate claims containment, not
   tightness. *)
let bounds_of scheme ~max_len =
  let subst = scheme.Scheme.subst and gap = scheme.Scheme.gap in
  let hi = max_len * max 0 (Substitution.max_score subst) in
  let lo = (max_len * min 0 (Substitution.min_score subst)) - Gaps.gap_cost gap (2 * max_len) in
  let fits bits v = v >= -(1 lsl (bits - 1)) && v < 1 lsl (bits - 1) in
  let bits =
    List.find (fun b -> fits b lo && fits b hi) [ 8; 16; 32; 64 ]
  in
  { sb_max_len = max_len; sb_lo = lo; sb_hi = hi; sb_bits = bits }

let analyze ?(max_len = default_max_len) scheme =
  let certs = [ Score_bounds (bounds_of scheme ~max_len) ] in
  let certs = if is_symmetric scheme then Symmetric :: certs else certs in
  let certs =
    match linear_extend scheme.Scheme.gap with
    | Some (extend, true) -> Affine_reduces_to_linear { extend } :: certs
    | _ -> certs
  in
  let certs =
    match unit_cost_of scheme with Some c -> Unit_cost c :: certs | None -> certs
  in
  { scheme_name = Scheme.to_string scheme; certs }

let unit_cost r =
  List.find_map (function Unit_cost c -> Some c | _ -> None) r.certs

let score_bounds r =
  List.find_map (function Score_bounds b -> Some b | _ -> None) r.certs

let symmetric r = List.mem Symmetric r.certs

let admissible_modes r =
  match unit_cost r with
  | Some _ -> [ Anyseq_bio.Alignment.Global ]
  | None -> []

let convert c ~n ~m ~distance = (c.uc_drift * (n + m)) - (c.uc_scale * distance)

(* Inverse of [convert] in the distance direction: the largest d with
   score(d) ≥ min_score. scale > 0 is part of the certificate, so the
   map d ↦ score is strictly decreasing and the cap is the floor of
   (drift·(n+m) − min_score) / scale — floor, not truncation, so a
   negative numerator (no distance qualifies) yields a negative cap
   rather than rounding toward a spurious 0. *)
let distance_cap c ~n ~m ~min_score =
  let num = (c.uc_drift * (n + m)) - min_score in
  let s = c.uc_scale in
  if num >= 0 then num / s else -((-num + s - 1) / s)

(* ------------------------------------------------------------------ *)
(* Independent re-validation of a claimed certificate.                  *)
(* ------------------------------------------------------------------ *)

let finding where fmt =
  Printf.ksprintf (fun msg -> Findings.make ~pass:"property" ~where msg) fmt

let check scheme cert =
  let where = Scheme.to_string scheme in
  match cert with
  | Symmetric -> if is_symmetric scheme then [] else [ finding where "claimed Symmetric but σ(x,y) ≠ σ(y,x) for some pair" ]
  | Affine_reduces_to_linear { extend } -> (
      match scheme.Scheme.gap with
      | Gaps.Affine { open_ = 0; extend = e } when e = extend -> []
      | g ->
          [ finding where "claimed Affine_reduces_to_linear(%d) but gap model is %s" extend
              (Gaps.to_string g) ])
  | Score_bounds b ->
      let fresh = bounds_of scheme ~max_len:b.sb_max_len in
      if fresh.sb_lo >= b.sb_lo && fresh.sb_hi <= b.sb_hi && fresh.sb_bits <= b.sb_bits
      then []
      else
        [ finding where
            "claimed score interval [%d, %d] (%d-bit cells) does not contain the derived \
             interval [%d, %d] (%d-bit)"
            b.sb_lo b.sb_hi b.sb_bits fresh.sb_lo fresh.sb_hi fresh.sb_bits ]
  | Unit_cost c ->
      let fs = ref [] in
      let fail fmt = Printf.ksprintf (fun m -> fs := finding where "%s" m :: !fs) fmt in
      (match semantically_simple scheme with
      | None -> fail "claimed Unit_cost but σ is not constant on/off the diagonal"
      | Some (ma, mi) ->
          if ma <> c.uc_match || mi <> c.uc_mismatch then
            fail "claimed σ = (%d, %d) but sweep derives (%d, %d)" c.uc_match c.uc_mismatch
              ma mi);
      (match linear_extend scheme.Scheme.gap with
      | None ->
          fail "claimed Unit_cost but gap model %s has no linear reduction"
            (Gaps.to_string scheme.Scheme.gap)
      | Some (ge, _) ->
          if ge <> c.uc_extend then
            fail "claimed gap extend %d but model has %d" c.uc_extend ge);
      if c.uc_match <> (2 * c.uc_mismatch) + (2 * c.uc_extend) then
        fail "unit-cost identity ma = 2·mi + 2·ge violated (%d ≠ 2·%d + 2·%d)" c.uc_match
          c.uc_mismatch c.uc_extend;
      let scale = c.uc_mismatch + (2 * c.uc_extend) in
      if scale <= 0 then fail "scale mi + 2·ge = %d is not positive" scale
      else if c.uc_scale <> scale then fail "claimed scale %d, derived %d" c.uc_scale scale;
      if c.uc_drift <> scale - c.uc_extend then
        fail "claimed drift %d, derived %d" c.uc_drift (scale - c.uc_extend);
      List.rev !fs

(* ------------------------------------------------------------------ *)

let cert_to_string = function
  | Unit_cost c ->
      Printf.sprintf
        "Unit_cost(match=%d mismatch=%d gap=%d; score = %d·(n+m) − %d·D)" c.uc_match
        c.uc_mismatch c.uc_extend c.uc_drift c.uc_scale
  | Affine_reduces_to_linear { extend } ->
      Printf.sprintf "Affine_reduces_to_linear(extend=%d)" extend
  | Symmetric -> "Symmetric"
  | Score_bounds b ->
      Printf.sprintf "Score_bounds(len≤%d: [%d, %d], %d-bit cells)" b.sb_max_len b.sb_lo
        b.sb_hi b.sb_bits

let report_to_string r =
  Printf.sprintf "%s: %s" r.scheme_name
    (String.concat ", " (List.map cert_to_string r.certs))
