(** Call-graph analysis of staged programs.

    Builds the static call graph of an {!Anyseq_staged.Expr.program},
    computes its strongly-connected components (Tarjan), and flags the
    cycles the partial evaluator is guaranteed to fall into: a cycle in
    which {e every} function carries the [Always] filter can never be
    residualized, so {!Anyseq_staged.Pe.run} burns fuel until
    [Out_of_fuel]. Catching it here turns a runtime fuel error into a
    static finding. *)

val calls_of : Anyseq_staged.Expr.fn -> string list
(** Callee names occurring in a function body, without duplicates. *)

val edges : Anyseq_staged.Expr.program -> (string * string list) list
(** [(caller, callees)] adjacency of the whole program. *)

val sccs : Anyseq_staged.Expr.program -> string list list
(** Strongly-connected components in reverse-topological discovery order;
    calls to functions outside the program are ignored. *)

val is_cyclic : Anyseq_staged.Expr.program -> string list -> bool
(** Whether an SCC actually contains a cycle (any multi-node component, or
    a singleton that calls itself). *)

val check_termination : Anyseq_staged.Expr.program -> Findings.t list
(** One finding per cycle whose members are all [Always]-filtered.
    [When_static] cycles are deliberately not flagged: they terminate when
    the controlling static argument decreases (pow-style recursion), which
    is a value property this analysis cannot decide. *)
