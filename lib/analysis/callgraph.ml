module E = Anyseq_staged.Expr

let rec callees acc = function
  | E.Int _ | E.Bool _ | E.Var _ -> acc
  | E.Let (_, a, b) -> callees (callees acc a) b
  | E.If (a, b, c) -> callees (callees (callees acc a) b) c
  | E.Binop (_, a, b) -> callees (callees acc a) b
  | E.Neg a -> callees acc a
  | E.Read (_, i) -> callees acc i
  | E.Call (f, args) ->
      let acc = if List.mem f acc then acc else f :: acc in
      List.fold_left callees acc args

let calls_of fn = List.rev (callees [] fn.E.body)

let edges program =
  List.map (fun (f : E.fn) -> (f.E.name, calls_of f)) program

(* Tarjan's strongly-connected components over the program's call graph;
   staged programs are a handful of functions, so recursion depth is not a
   concern. *)
let sccs program =
  let succ = Hashtbl.create 16 in
  List.iter
    (fun (f : E.fn) ->
      let known = List.filter (fun c -> E.lookup_fn program c <> None) (calls_of f) in
      Hashtbl.replace succ f.E.name known)
    program;
  let index = Hashtbl.create 16 and lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] and next = ref 0 and out = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !next;
    Hashtbl.replace lowlink v !next;
    incr next;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (try Hashtbl.find succ v with Not_found -> []);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
      in
      out := pop [] :: !out
    end
  in
  List.iter (fun (f : E.fn) -> if not (Hashtbl.mem index f.E.name) then strongconnect f.E.name) program;
  List.rev !out

let is_cyclic program scc =
  match scc with
  | [] -> false
  | [ v ] -> (
      (* A singleton SCC is a cycle only if it calls itself. *)
      match E.lookup_fn program v with
      | Some fn -> List.mem v (calls_of fn)
      | None -> false)
  | _ -> true

(* An [Always]-filtered cycle unfolds unconditionally at specialization
   time: the partial evaluator can never residualize its way out, so the
   only possible outcomes are fuel exhaustion or divergence. [When_static]
   cycles are not flagged — they terminate whenever the controlling static
   argument decreases (pow-style recursion), which is a value property out
   of reach of a binding-time-level analysis. *)
let check_termination program =
  List.filter_map
    (fun scc ->
      if
        is_cyclic program scc
        && List.for_all
             (fun name ->
               match E.lookup_fn program name with
               | Some fn -> fn.E.filter = E.Always
               | None -> false)
             scc
      then
        Some
          (Findings.make ~pass:"termination" ~where:(String.concat " -> " scc)
             "Always-filtered call cycle: partial evaluation will unfold it until fuel \
              runs out (Out_of_fuel)")
      else None)
    (sccs program)
