(** Pass orchestration.

    Pass order and what each guarantees (see DESIGN.md, "Static analysis
    of the staged IR"):

    + {!Typecheck} — the program/residual is well typed, all calls resolve
      with correct arity, no unbound variables: everything
      {!Anyseq_staged.Compile} would otherwise only report at run time.
    + {!Callgraph.check_termination} — specialization itself terminates
      (no [Always]-filtered unfold cycles).
    + {!Bta.check_residual} — specialization is {e complete}: nothing the
      binding-time analysis proves static survives in the residual.
    + {!Lint} — the residual is dispatch-free over configuration, has no
      dead lets, and reads only registered arrays.

    An empty findings list over the full mode × scheme matrix is the
    machine-checked form of the paper's central claim. *)

val analyze_program : Anyseq_staged.Expr.program -> Findings.t list
(** Source-program checks: typecheck + termination. *)

val analyze_residual :
  ?static_vars:string list ->
  ?static_arrays:string list ->
  ?config_vars:string list ->
  ?registered_arrays:string list ->
  Anyseq_staged.Pe.residual ->
  Findings.t list
(** Residual checks: typecheck + BTA completeness + lint. [static_vars]
    is the static environment the residual was specialized under;
    [config_vars] the configuration axes dispatch must not survive on
    (usually the same set); [registered_arrays] the arrays the runtime
    will provide. *)

val specialize_and_analyze :
  ?fuel:int ->
  ?static_arrays:(string * int array) list ->
  program:Anyseq_staged.Expr.program ->
  name:string ->
  static_args:(string * Anyseq_staged.Pe.value) list ->
  ?registered_arrays:string list ->
  unit ->
  (Anyseq_staged.Pe.residual * Findings.t list, Anyseq_staged.Pe.error) result
(** [Pe.specialize_fn] followed by the full suite over both the source
    program and the residual. *)
