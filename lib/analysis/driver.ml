module E = Anyseq_staged.Expr
module Pe = Anyseq_staged.Pe

let analyze_program program =
  let tc = Typecheck.check_program program in
  (* Termination runs even when the typechecker found problems: the call
     graph only needs names and filters, which are always well defined. *)
  tc @ Callgraph.check_termination program

let analyze_residual ?(static_vars = []) ?(static_arrays = []) ?(config_vars = [])
    ?(registered_arrays = []) residual =
  let tc = Typecheck.check_residual residual in
  let bta = Bta.check_residual ~static_vars ~static_arrays residual in
  let lint = Lint.check ~config_vars ~registered_arrays residual in
  tc @ bta @ lint

let specialize_and_analyze ?fuel ?static_arrays ~program ~name ~static_args
    ?(registered_arrays = []) () =
  match Pe.specialize_fn ?fuel ?static_arrays ~program ~name ~static_args () with
  | Error e -> Error e
  | Ok residual ->
      let static_vars = List.map fst static_args in
      let static_array_names =
        match static_arrays with None -> [] | Some l -> List.map fst l
      in
      let findings =
        analyze_program program
        @ analyze_residual ~static_vars ~static_arrays:static_array_names
            ~config_vars:static_vars ~registered_arrays residual
      in
      Ok (residual, findings)
