type t = { alphabet : Alphabet.t; codes : Bytes.t }

let of_string alphabet s =
  let n = String.length s in
  let codes = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set codes i (Char.chr (Alphabet.code_of_char alphabet s.[i]))
  done;
  { alphabet; codes }

let of_substring alphabet s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Sequence.of_substring: range out of bounds";
  let codes = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.unsafe_set codes i
      (Char.chr (Alphabet.code_of_char alphabet (String.unsafe_get s (pos + i))))
  done;
  { alphabet; codes }

let to_string t =
  String.init (Bytes.length t.codes) (fun i ->
      Alphabet.char_of_code t.alphabet (Char.code (Bytes.unsafe_get t.codes i)))

let of_codes alphabet arr =
  let size = Alphabet.size alphabet in
  let n = Array.length arr in
  let codes = Bytes.create n in
  for i = 0 to n - 1 do
    let c = arr.(i) in
    if c < 0 || c >= size then invalid_arg "Sequence.of_codes: code out of range";
    Bytes.unsafe_set codes i (Char.chr c)
  done;
  { alphabet; codes }

let length t = Bytes.length t.codes
let alphabet t = t.alphabet

let get t i =
  if i < 0 || i >= length t then invalid_arg "Sequence.get: index out of bounds";
  Char.code (Bytes.unsafe_get t.codes i)

let unsafe_get t i = Char.code (Bytes.unsafe_get t.codes i)
let unsafe_codes t = t.codes

let get_char t i = Alphabet.char_of_code t.alphabet (get t i)

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > length t then
    invalid_arg "Sequence.sub: range out of bounds";
  { alphabet = t.alphabet; codes = Bytes.sub t.codes pos len }

let rev t =
  let n = length t in
  let codes = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set codes i (Bytes.unsafe_get t.codes (n - 1 - i))
  done;
  { alphabet = t.alphabet; codes }

let reverse_complement t =
  match Alphabet.complement t.alphabet with
  | None ->
      invalid_arg
        (Printf.sprintf "Sequence.reverse_complement: alphabet %s has no complement"
           (Alphabet.name t.alphabet))
  | Some comp ->
      let n = length t in
      let codes = Bytes.create n in
      for i = 0 to n - 1 do
        Bytes.unsafe_set codes i
          (Char.chr (comp (Char.code (Bytes.unsafe_get t.codes (n - 1 - i)))))
      done;
      { alphabet = t.alphabet; codes }

let concat a b =
  if not (Alphabet.equal a.alphabet b.alphabet) then
    invalid_arg "Sequence.concat: alphabet mismatch";
  { alphabet = a.alphabet; codes = Bytes.cat a.codes b.codes }

let equal a b = Alphabet.equal a.alphabet b.alphabet && Bytes.equal a.codes b.codes

let compare a b =
  let c = compare (Alphabet.name a.alphabet) (Alphabet.name b.alphabet) in
  if c <> 0 then c else Bytes.compare a.codes b.codes

type view = { len : int; at : int -> int }

let view t =
  let codes = t.codes in
  { len = Bytes.length codes; at = (fun i -> Char.code (Bytes.unsafe_get codes i)) }

let subview v ~pos ~len =
  if pos < 0 || len < 0 || pos + len > v.len then
    invalid_arg "Sequence.subview: range out of bounds";
  let at = v.at in
  { len; at = (fun i -> at (pos + i)) }

let rev_view v =
  let at = v.at and last = v.len - 1 in
  { len = v.len; at = (fun i -> at (last - i)) }

let view_to_string alphabet v =
  String.init v.len (fun i -> Alphabet.char_of_code alphabet (v.at i))

let random rng alphabet ~len =
  let letters =
    match Alphabet.wildcard alphabet with
    | Some w when w = Alphabet.size alphabet - 1 -> Alphabet.size alphabet - 1
    | _ -> Alphabet.size alphabet
  in
  let codes = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.unsafe_set codes i (Char.chr (Anyseq_util.Rng.int rng letters))
  done;
  { alphabet; codes }
