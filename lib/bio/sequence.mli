(** Packed biological sequences and the accessor views of AnySeq §III-B.

    A sequence is an immutable array of alphabet codes. The DP engines never
    touch a sequence directly: they receive a {!view} — a record of functions
    mirroring the paper's

    {v
    struct Sequence {
      len: fn() -> Index,
      at: fn(Index) -> Char,
      ...
    }
    v}

    so that sub-ranges and reversed ranges (needed by the divide-and-conquer
    traceback) are obtained by wrapping the indexing function rather than by
    copying data. *)

type t
(** An immutable encoded sequence. *)

val of_string : Alphabet.t -> string -> t
(** Encode; raises [Invalid_argument] on characters the alphabet rejects. *)

val of_substring : Alphabet.t -> string -> pos:int -> len:int -> t
(** Encode a slice of [s] directly — no intermediate [String.sub] copy.
    The server decode path uses this to build sequences straight from a
    wire payload. Raises like {!of_string}, plus on a bad range. *)

val to_string : t -> string

val of_codes : Alphabet.t -> int array -> t
(** Raises [Invalid_argument] on out-of-range codes. *)

val length : t -> int
val alphabet : t -> Alphabet.t

val get : t -> int -> int
(** Code at an index; bounds-checked. *)

val unsafe_get : t -> int -> int
(** Code at an index with no bounds check — the native residual kernels'
    inner loops. The caller must guarantee [0 <= i < length t]. *)

val unsafe_codes : t -> bytes
(** The underlying code buffer, one code per byte. A performance escape
    hatch for specialized kernels: hoisting this once per call turns the
    per-cell read into an inlined [Bytes.unsafe_get] primitive, where
    {!unsafe_get} is a (non-inlined) cross-module call per cell. Callers
    must treat the buffer as read-only; mutating it corrupts the
    sequence. *)

val get_char : t -> int -> char

val sub : t -> pos:int -> len:int -> t
(** Copying sub-sequence; bounds-checked. *)

val rev : t -> t
(** Copying reversal. *)

val reverse_complement : t -> t
(** Reverse strand of a DNA sequence. Raises [Invalid_argument] for
    alphabets without a complement (protein). *)

val concat : t -> t -> t
(** Raises [Invalid_argument] when alphabets differ. *)

val equal : t -> t -> bool
val compare : t -> t -> int

(** {1 Accessor views} *)

type view = {
  len : int;  (** number of accessible characters *)
  at : int -> int;  (** code at view-relative index, 0-based, unchecked *)
}
(** A read-only window onto some sequence. [at] is deliberately a bare
    function so engines can be handed reversed, shifted, or synthetic views
    without knowing; the partial application happens once per alignment, so
    the indirection sits outside the hot loop exactly as partial evaluation
    guarantees in Impala. *)

val view : t -> view
(** Whole-sequence view. *)

val subview : view -> pos:int -> len:int -> view
(** Window of an existing view; bounds-checked against the parent length. *)

val rev_view : view -> view
(** Same characters, reversed indexing — no copy. This is the paper's
    "reverse the indexing in the sequence accessor function" used by the
    Hirschberg traceback. *)

val view_to_string : Alphabet.t -> view -> string
(** Materialize a view for debugging/output. *)

val random : Anyseq_util.Rng.t -> Alphabet.t -> len:int -> t
(** Uniform random sequence over the non-wildcard letters. *)
