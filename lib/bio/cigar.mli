(** Edit transcripts in (extended) CIGAR form.

    A traceback produces a path through the DP matrix; this module holds the
    run-length-encoded description of that path. We use the extended opcode
    set: [=] match, [X] mismatch, [I] gap in the subject (consumes query),
    [D] gap in the query (consumes subject). *)

type op = Match | Mismatch | Ins | Del

type t
(** A run-length-encoded sequence of operations. *)

val empty : t
val is_empty : t -> bool

val of_ops : op list -> t
(** Compress a per-column operation list (in alignment order). *)

val to_ops : t -> op list
(** Expand back to one operation per alignment column. *)

val runs : t -> (int * op) list
(** The run-length representation, lengths all positive. *)

val of_runs : (int * op) list -> t
(** Normalizes: merges adjacent equal ops, drops zero runs; raises
    [Invalid_argument] on negative lengths. *)

val append : t -> op -> t
(** Add one op at the end (O(1) amortized through run merging). *)

val op_to_code : op -> int
(** 0 [=], 1 [X], 2 [I], 3 [D] — for pooled traceback op buffers. *)

val op_of_code : int -> op
(** Inverse of {!op_to_code}; unknown codes decode as [Del]. *)

val of_rev_op_codes : int array -> int -> t
(** [of_rev_op_codes buf k] builds a CIGAR from [buf.(0..k-1)], opcodes
    pushed in {e backward} (traceback) order — exactly what a DP matrix
    walk emits into a scratch buffer. Equal to [of_ops] applied to the
    forward op list; allocates only the run list. *)

val concat : t -> t -> t

val rev : t -> t
(** Alignment read right-to-left — used when stitching tracebacks that were
    computed on reversed sequences. *)

val query_consumed : t -> int
(** Number of query characters covered (= + X + I). *)

val subject_consumed : t -> int
(** Number of subject characters covered (= + X + D). *)

val length : t -> int
(** Number of alignment columns. *)

val count : t -> op -> int

val to_string : t -> string
(** e.g. ["12=1X3I9="]. *)

val of_string : string -> t
(** Parses the extended form, plus [M] (treated as [=] for consumption
    purposes is wrong — [M] is rejected to avoid silent ambiguity). Raises
    [Invalid_argument] on malformed input. *)

val equal : t -> t -> bool

val identity : t -> float
(** Fraction of alignment columns that are matches, 0 for empty. *)
