type op = Match | Mismatch | Ins | Del

(* Stored in reverse run order so [append] is cheap. *)
type t = { rev_runs : (int * op) list }

let empty = { rev_runs = [] }
let is_empty t = t.rev_runs = []

let of_runs runs =
  let push acc (n, op) =
    if n < 0 then invalid_arg "Cigar.of_runs: negative run length";
    if n = 0 then acc
    else
      match acc with
      | (n', op') :: rest when op' = op -> (n' + n, op') :: rest
      | _ -> (n, op) :: acc
  in
  { rev_runs = List.fold_left push [] runs }

let runs t = List.rev t.rev_runs

let of_ops ops = of_runs (List.map (fun op -> (1, op)) ops)

let to_ops t =
  List.concat_map (fun (n, op) -> List.init n (fun _ -> op)) (runs t)

(* Integer opcodes for pooled traceback builders: the DP walk pushes
   plain ints into a scratch buffer instead of consing an op list. *)
let op_to_code = function Match -> 0 | Mismatch -> 1 | Ins -> 2 | Del -> 3

let op_of_code = function
  | 0 -> Match
  | 1 -> Mismatch
  | 2 -> Ins
  | _ -> Del

let of_rev_op_codes a k =
  (* a.(0 .. k-1) were pushed while walking the matrix backwards, so
     forward alignment order is index k-1 down to 0. Build the reverse
     run list directly — equal to [of_ops] over the forward list. *)
  if k < 0 || k > Array.length a then invalid_arg "Cigar.of_rev_op_codes";
  let rev_runs = ref [] in
  let i = ref (k - 1) in
  while !i >= 0 do
    let code = a.(!i) in
    let j = ref (!i - 1) in
    while !j >= 0 && a.(!j) = code do
      decr j
    done;
    rev_runs := (!i - !j, op_of_code code) :: !rev_runs;
    i := !j
  done;
  { rev_runs = !rev_runs }

let append t op =
  match t.rev_runs with
  | (n, op') :: rest when op' = op -> { rev_runs = (n + 1, op) :: rest }
  | rest -> { rev_runs = (1, op) :: rest }

let concat a b = of_runs (runs a @ runs b)

let rev t = of_runs t.rev_runs

let sum_when pred t =
  List.fold_left (fun acc (n, op) -> if pred op then acc + n else acc) 0 t.rev_runs

let query_consumed t = sum_when (function Match | Mismatch | Ins -> true | Del -> false) t
let subject_consumed t = sum_when (function Match | Mismatch | Del -> true | Ins -> false) t
let length t = sum_when (fun _ -> true) t
let count t op = sum_when (fun o -> o = op) t

let char_of_op = function Match -> '=' | Mismatch -> 'X' | Ins -> 'I' | Del -> 'D'

let op_of_char = function
  | '=' -> Match
  | 'X' -> Mismatch
  | 'I' -> Ins
  | 'D' -> Del
  | 'M' -> invalid_arg "Cigar.of_string: ambiguous op 'M'; use '=' or 'X'"
  | c -> invalid_arg (Printf.sprintf "Cigar.of_string: unknown op %C" c)

let to_string t =
  let buf = Buffer.create 32 in
  List.iter
    (fun (n, op) ->
      Buffer.add_string buf (string_of_int n);
      Buffer.add_char buf (char_of_op op))
    (runs t);
  Buffer.contents buf

let of_string s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then of_runs (List.rev acc)
    else
      let j = ref i in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
        incr j
      done;
      if !j = i || !j >= n then invalid_arg "Cigar.of_string: malformed run";
      let count = int_of_string (String.sub s i (!j - i)) in
      go (!j + 1) ((count, op_of_char s.[!j]) :: acc)
  in
  go 0 []

let equal a b = runs a = runs b

let identity t =
  let len = length t in
  if len = 0 then 0.0 else float_of_int (count t Match) /. float_of_int len
