(* Monotonic timing. [Monotonic_clock.now] (bechamel's CLOCK_MONOTONIC
   binding, already a dependency of the bench harness) gives nanosecond
   timestamps that never step backwards, which span tracing requires —
   wall-clock NTP adjustments would otherwise produce negative span
   durations. *)

let now_ns () = Monotonic_clock.now ()

let elapsed_ns t0 = Int64.sub (now_ns ()) t0
let elapsed_us t0 = Int64.to_int (Int64.div (elapsed_ns t0) 1000L)

let seconds_of_ns ns = Int64.to_float ns /. 1e9

let time f =
  let t0 = now_ns () in
  let result = f () in
  (result, seconds_of_ns (elapsed_ns t0))

let time_only f = snd (time f)

let best_of ~repeats f =
  let repeats = max 1 repeats in
  let best = ref infinity in
  for _ = 1 to repeats do
    let dt = time_only f in
    if dt < !best then best := dt
  done;
  !best

let rate ?(repeats = 2) ~cells f = float_of_int cells /. best_of ~repeats f

let gcups ~cells ~seconds =
  if seconds <= 0.0 then 0.0 else float_of_int cells /. seconds /. 1e9
