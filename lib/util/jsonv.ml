(* A minimal JSON reader for the observability tooling: [anyseq top]
   polls the admin endpoint's /statusz document, and the tests validate
   /debug/flight dumps. Only what those need — full parse into a value
   tree, object/array accessors — with no external dependency. Encoding
   is done by hand at the producing sites (Buffer + escape). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Bad of string

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> raise (Bad (Printf.sprintf "expected '%c', got '%c' at %d" ch x c.pos))
  | None -> raise (Bad (Printf.sprintf "expected '%c', got end of input" ch))

let expect_lit c lit v =
  let n = String.length lit in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = lit then begin
    c.pos <- c.pos + n;
    v
  end
  else raise (Bad (Printf.sprintf "bad literal at %d" c.pos))

let hex_digit ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
  | _ -> raise (Bad "bad \\u escape")

let r_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> raise (Bad "unterminated string")
    | Some '"' -> advance c
    | Some '\\' ->
        advance c;
        (match peek c with
        | Some 'n' -> Buffer.add_char b '\n'
        | Some 't' -> Buffer.add_char b '\t'
        | Some 'r' -> Buffer.add_char b '\r'
        | Some 'b' -> Buffer.add_char b '\b'
        | Some 'f' -> Buffer.add_char b '\012'
        | Some '"' -> Buffer.add_char b '"'
        | Some '\\' -> Buffer.add_char b '\\'
        | Some '/' -> Buffer.add_char b '/'
        | Some 'u' ->
            if c.pos + 4 >= String.length c.s then raise (Bad "truncated \\u escape");
            let v =
              (hex_digit c.s.[c.pos + 1] lsl 12)
              lor (hex_digit c.s.[c.pos + 2] lsl 8)
              lor (hex_digit c.s.[c.pos + 3] lsl 4)
              lor hex_digit c.s.[c.pos + 4]
            in
            c.pos <- c.pos + 4;
            (* Status documents are ASCII; anything wider degrades to '?'. *)
            Buffer.add_char b (if v < 0x80 then Char.chr v else '?')
        | _ -> raise (Bad "bad escape"));
        advance c;
        go ()
    | Some ch ->
        Buffer.add_char b ch;
        advance c;
        go ()
  in
  go ();
  Buffer.contents b

let r_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  if c.pos = start then raise (Bad (Printf.sprintf "expected a number at %d" start));
  match float_of_string_opt (String.sub c.s start (c.pos - start)) with
  | Some f -> f
  | None -> raise (Bad (Printf.sprintf "bad number at %d" start))

let rec r_value c =
  skip_ws c;
  match peek c with
  | None -> raise (Bad "unexpected end of input")
  | Some '"' -> Str (r_string c)
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws c;
          let k = r_string c in
          skip_ws c;
          expect c ':';
          let v = r_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              members ((k, v) :: acc)
          | Some '}' ->
              advance c;
              List.rev ((k, v) :: acc)
          | _ -> raise (Bad "expected ',' or '}' in object")
        in
        Obj (members [])
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let rec elems acc =
          let v = r_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              elems (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> raise (Bad "expected ',' or ']' in array")
        in
        List (elems [])
      end
  | Some 't' -> expect_lit c "true" (Bool true)
  | Some 'f' -> expect_lit c "false" (Bool false)
  | Some 'n' -> expect_lit c "null" Null
  | Some _ -> Num (r_number c)

let parse s =
  let c = { s; pos = 0 } in
  match r_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then Error "trailing bytes after JSON value" else Ok v
  | exception Bad msg -> Error msg

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_num = function
  | Num f -> Some f
  | _ -> None

let to_str = function
  | Str s -> Some s
  | _ -> None

let to_list = function
  | List l -> Some l
  | _ -> None

let to_bool = function
  | Bool b -> Some b
  | _ -> None

let num ?(default = 0.0) key v =
  match Option.bind (member key v) to_num with Some f -> f | None -> default

let str ?(default = "") key v =
  match Option.bind (member key v) to_str with Some s -> s | None -> default

(* The one escape every producer needs. *)
let escape_string s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | ch when Char.code ch < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char b ch)
    s;
  Buffer.contents b
