(** A minimal JSON value reader for the observability tooling.

    [anyseq top] polls the admin endpoint's [/statusz] document and the
    tests validate [/debug/flight] dumps with this — a full parse into a
    value tree plus the few accessors a status consumer needs, with no
    external dependency. Producers encode by hand (it's all flat
    records); {!escape_string} is the one shared piece. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Whole-input parse; trailing bytes are an error. Strings decode the
    standard escapes ([\uXXXX] beyond ASCII degrades to ['?'] — status
    documents are ASCII). *)

val member : string -> t -> t option
(** Object field by key ([None] on non-objects and missing keys). *)

val to_num : t -> float option
val to_str : t -> string option
val to_list : t -> t list option
val to_bool : t -> bool option

val num : ?default:float -> string -> t -> float
(** [num key obj]: numeric field with a default — [member] + [to_num]. *)

val str : ?default:string -> string -> t -> string

val escape_string : string -> string
(** JSON string-body escaping (quotes not included). *)
