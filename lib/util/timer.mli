(** Monotonic timing helpers for the benchmark harness and the span
    tracer. All timestamps come from [CLOCK_MONOTONIC], so differences are
    insensitive to NTP steps and never negative. *)

val now_ns : unit -> int64
(** Monotonic timestamp in nanoseconds. Only differences are meaningful;
    the origin is unspecified (boot time on Linux). *)

val elapsed_ns : int64 -> int64
(** [elapsed_ns t0] is [now_ns () - t0]. *)

val elapsed_us : int64 -> int
(** [elapsed_ns] truncated to whole microseconds, as an [int] — the unit
    the metrics histograms record. *)

val seconds_of_ns : int64 -> float

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    seconds. *)

val time_only : (unit -> 'a) -> float
(** Elapsed seconds of one run, discarding the result. *)

val best_of : repeats:int -> (unit -> 'a) -> float
(** Minimum elapsed seconds over [repeats] runs (at least one). The minimum
    is the standard robust estimator for single-threaded kernel cost. *)

val rate : ?repeats:int -> cells:int -> (unit -> 'a) -> float
(** [rate ~cells f] is cells per second under {!best_of} (default 2
    repeats) — the calibration estimator the bench harness's machine model
    is built on. *)

val gcups : cells:int -> seconds:float -> float
(** Giga cell updates per second — the unit all of the paper's performance
    figures use. *)
