module Substitution = Anyseq_bio.Substitution
module Gaps = Anyseq_bio.Gaps
module Alphabet = Anyseq_bio.Alphabet

type t = { name : string; subst : Substitution.t; gap : Gaps.t }

let make ?name subst gap =
  let name =
    match name with
    | Some n -> n
    | None ->
        Printf.sprintf "%s+%s" (Alphabet.name (Substitution.alphabet subst))
          (Gaps.to_string gap)
  in
  { name; subst; gap }

let dna_simple_linear ~match_ ~mismatch ~gap_extend =
  make
    ~name:(Printf.sprintf "dna(%+d/%+d)/linear(%d)" match_ mismatch gap_extend)
    (Substitution.simple Alphabet.dna4 ~match_ ~mismatch)
    (Gaps.linear gap_extend)

let dna_simple_affine ~match_ ~mismatch ~gap_open ~gap_extend =
  make
    ~name:
      (Printf.sprintf "dna(%+d/%+d)/affine(%d,%d)" match_ mismatch gap_open gap_extend)
    (Substitution.simple Alphabet.dna4 ~match_ ~mismatch)
    (Gaps.affine ~open_:gap_open ~extend:gap_extend)

let paper_linear = dna_simple_linear ~match_:2 ~mismatch:(-1) ~gap_extend:1
let paper_affine = dna_simple_affine ~match_:2 ~mismatch:(-1) ~gap_open:2 ~gap_extend:1

let blosum62_affine =
  make ~name:"blosum62/affine(10,1)" Substitution.blosum62
    (Gaps.affine ~open_:10 ~extend:1)

let wildcard_linear =
  make ~name:"dna5(+2/-1)/linear(1)"
    (Substitution.dna_wildcard ~match_:2 ~mismatch:(-1))
    (Gaps.linear 1)

let wildcard_affine =
  make ~name:"dna5(+2/-1)/affine(2,1)"
    (Substitution.dna_wildcard ~match_:2 ~mismatch:(-1))
    (Gaps.affine ~open_:2 ~extend:1)

let unit_cost =
  make ~name:"unit-cost"
    (Substitution.simple Alphabet.dna4 ~match_:0 ~mismatch:(-1))
    (Gaps.linear 1)

let builtins =
  [ paper_linear; paper_affine; blosum62_affine; wildcard_linear; wildcard_affine; unit_cost ]

let subst_score t = Substitution.score t.subst
let alphabet t = Substitution.alphabet t.subst
let is_affine t = Gaps.is_affine t.gap
let to_string t = t.name
