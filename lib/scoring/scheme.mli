(** Complete scoring schemes — a substitution function composed with a gap
    model, the unit of configuration that §III-C's interface functions pass
    around ([global_scheme(linear_gap_scoring(simple_subst_scoring(2,-1),
    -1))]). *)

type t = private {
  name : string;
  subst : Anyseq_bio.Substitution.t;
  gap : Anyseq_bio.Gaps.t;
}

val make : ?name:string -> Anyseq_bio.Substitution.t -> Anyseq_bio.Gaps.t -> t

val dna_simple_linear : match_:int -> mismatch:int -> gap_extend:int -> t
(** Simple dna4 scheme with a linear gap penalty. *)

val dna_simple_affine : match_:int -> mismatch:int -> gap_open:int -> gap_extend:int -> t

val paper_linear : t
(** The paper's main configuration: +2 match, −1 mismatch, −1 linear gap. *)

val paper_affine : t
(** The paper's affine configuration: +2/−1 with Go = 2, Ge = 1. *)

val blosum62_affine : t
(** BLOSUM62 with Go = 10, Ge = 1 — the protein example configuration. *)

val wildcard_linear : t
(** dna5 wildcard (+2/−1) with a linear gap — exercises the
    substitution-matrix path of the staged kernel. *)

val wildcard_affine : t
(** dna5 wildcard (+2/−1) with Go = 2, Ge = 1. *)

val unit_cost : t
(** match 0 / mismatch −1 / linear gap 1 over dna4 — the scheme whose
    global score is exactly the negated Levenshtein distance. Being a
    builtin, a remote job naming ["unit-cost"] resolves to this value and
    is eligible for the bit-parallel tier (the property pass certifies any
    scheme in the same unit-cost equivalence class, named or not). *)

val builtins : t list
(** The named built-in schemes. Together they cover every configuration
    axis of the staged kernel (simple vs matrix substitution, linear vs
    affine gaps); [anyseq analyze] and the analyzer regression tests sweep
    this list × every alignment mode. *)

val subst_score : t -> int -> int -> int
(** σ(q, s) on alphabet codes. *)

val alphabet : t -> Anyseq_bio.Alphabet.t
val is_affine : t -> bool
val to_string : t -> string
