module Addr = Anyseq_client.Addr

(* A deliberately minimal HTTP/1.0 server: one request per connection,
   handled inline on the acceptor thread, connection closed after the
   response. Admin traffic is a human or a scraper at a few requests per
   second — the trade is simplicity and boundedness over throughput.
   Slow or hostile peers are cut off by a receive timeout and a request
   size cap; a stuck handler is the only way to stall the loop, and the
   handlers are snapshot renderers. *)

type response = { status : int; content_type : string; body : string }

type t = {
  fd : Unix.file_descr;
  addr : Addr.t;
  handler : string -> response option;
  stop_flag : bool Atomic.t;
  mutable thread : Thread.t option;
}

let address t = t.addr

let ok ?(content_type = "text/plain; charset=utf-8") body =
  Some { status = 200; content_type; body }

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 503 -> "Service Unavailable"
  | _ -> "Error"

let max_request_bytes = 4096

(* Read until the end of the request head (or EOF / timeout / cap). We
   only need the request line; the rest is drained so well-behaved
   clients don't see a reset while the response is in flight. *)
let read_head fd =
  let buf = Bytes.create 512 in
  let b = Buffer.create 256 in
  let rec go () =
    if Buffer.length b >= max_request_bytes then None
    else
      let contains_end () =
        let s = Buffer.contents b in
        let exists pat =
          let lp = String.length pat and ls = String.length s in
          let rec at i = i + lp <= ls && (String.sub s i lp = pat || at (i + 1)) in
          at (max 0 (ls - 512))
        in
        exists "\r\n\r\n" || exists "\n\n"
      in
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> if Buffer.length b > 0 then Some (Buffer.contents b) else None
      | n ->
          Buffer.add_subbytes b buf 0 n;
          if contains_end () then Some (Buffer.contents b) else go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (_, _, _) -> None
  in
  go ()

let parse_request_line head =
  let line =
    match String.index_opt head '\n' with
    | Some i -> String.trim (String.sub head 0 i)
    | None -> String.trim head
  in
  match String.split_on_char ' ' line with
  | meth :: path :: _ when meth = "GET" || meth = "HEAD" ->
      (* Query strings are not interpreted; route on the bare path. *)
      let path =
        match String.index_opt path '?' with
        | Some i -> String.sub path 0 i
        | None -> path
      in
      Some (meth, path)
  | _ -> None

let write_all fd s =
  let buf = Bytes.of_string s in
  let rec go pos len =
    if len > 0 then
      match Unix.write fd buf pos len with
      | n -> go (pos + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos len
      | exception Unix.Unix_error (_, _, _) -> ()
  in
  go 0 (Bytes.length buf)

let respond fd ~head_only { status; content_type; body } =
  let head =
    Printf.sprintf
      "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
      status (status_text status) content_type (String.length body)
  in
  write_all fd (if head_only then head else head ^ body)

let handle t fd =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0 with Unix.Unix_error _ -> ());
  (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0 with Unix.Unix_error _ -> ());
  (match read_head fd with
  | None -> ()
  | Some head -> (
      match parse_request_line head with
      | None ->
          respond fd ~head_only:false
            { status = 400; content_type = "text/plain"; body = "bad request\n" }
      | Some (meth, path) ->
          let resp =
            match t.handler path with
            | Some r -> r
            | None ->
                { status = 404; content_type = "text/plain"; body = "not found\n" }
          in
          respond fd ~head_only:(meth = "HEAD") resp));
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  let rec go () =
    if Atomic.get t.stop_flag then ()
    else begin
      (match Unix.select [ t.fd ] [] [] 0.1 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept t.fd with
          | fd, _ -> handle t fd
          | exception Unix.Unix_error _ -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ()
    end
  in
  go ()

let start ~addr ~handler =
  match Addr.listen addr with
  | Error _ as e -> e
  | Ok (fd, bound) ->
      let t = { fd; addr = bound; handler; stop_flag = Atomic.make false; thread = None } in
      t.thread <- Some (Thread.create accept_loop t);
      Ok t

let stop t =
  if not (Atomic.get t.stop_flag) then begin
    Atomic.set t.stop_flag true;
    (match t.thread with Some th -> Thread.join th | None -> ());
    (try Unix.close t.fd with Unix.Unix_error _ -> ());
    Addr.unlink_if_socket t.addr
  end

(* ---- the matching one-shot client ---- *)

let http_get addr path =
  match Addr.connect addr with
  | Error msg -> Error msg
  | Ok fd ->
      let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
      Fun.protect ~finally (fun () ->
          (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0 with Unix.Unix_error _ -> ());
          write_all fd (Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path);
          let buf = Bytes.create 4096 in
          let b = Buffer.create 1024 in
          let rec drain () =
            match Unix.read fd buf 0 (Bytes.length buf) with
            | 0 -> ()
            | n ->
                Buffer.add_subbytes b buf 0 n;
                drain ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
            | exception Unix.Unix_error (e, _, _) ->
                raise (Failure (Unix.error_message e))
          in
          match drain () with
          | () -> (
              let raw = Buffer.contents b in
              let split_at pat =
                let lp = String.length pat in
                let rec at i =
                  if i + lp > String.length raw then None
                  else if String.sub raw i lp = pat then Some i
                  else at (i + 1)
                in
                at 0
              in
              let head, body =
                match split_at "\r\n\r\n" with
                | Some i ->
                    (String.sub raw 0 i,
                     String.sub raw (i + 4) (String.length raw - i - 4))
                | None -> (
                    match split_at "\n\n" with
                    | Some i ->
                        (String.sub raw 0 i,
                         String.sub raw (i + 2) (String.length raw - i - 2))
                    | None -> (raw, ""))
              in
              match String.split_on_char ' ' head with
              | _ :: code :: _ -> (
                  match int_of_string_opt code with
                  | Some status -> Ok (status, body)
                  | None -> Error "unparsable HTTP status line")
              | _ -> Error "unparsable HTTP status line")
          | exception Failure msg -> Error ("read failed: " ^ msg))
