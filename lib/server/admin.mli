(** The live admin endpoint: a second listener speaking minimal HTTP/1.0.

    A production server must be observable while it runs; this is the
    window. {!start} binds one extra listener ([--admin tcp:HOST:PORT]
    or a Unix socket) and serves [GET]/[HEAD] requests through a routing
    callback, one request per connection, closing after each response —
    the smallest protocol a Prometheus scraper, a load balancer's health
    check, a browser and [anyseq top] all speak.

    The server mounts [/metrics] (Prometheus text exposition),
    [/healthz] (drain-aware 200/503), [/statusz] (JSON: shards, cache,
    tiers, stage latencies, build info) and [/debug/flight] (the flight
    recorder's ring) on it; the routes live in {!Server} where the state
    is.

    Hostile-input posture matches the wire protocol's: a 2 s receive
    timeout, a 4 KiB request cap, and a malformed request costs its own
    connection only. The handler runs on the admin accept thread, so
    handlers must be quick snapshot renderers — all the mounted ones
    are. *)

type response = { status : int; content_type : string; body : string }

type t

val ok : ?content_type:string -> string -> response option
(** [Some { status = 200; … }] — handler convenience (default content
    type [text/plain; charset=utf-8]). *)

val start :
  addr:Anyseq_client.Addr.t ->
  handler:(string -> response option) ->
  (t, string) result
(** Bind [addr] and serve. The handler maps a bare path (query string
    stripped) to a response; [None] renders a 404. *)

val address : t -> Anyseq_client.Addr.t
(** The bound address (TCP port 0 resolved to the real port). *)

val stop : t -> unit
(** Close the listener and join the accept thread. Idempotent. *)

val http_get :
  Anyseq_client.Addr.t -> string -> (int * string, string) result
(** Matching one-shot client: [GET path] against an admin endpoint,
    returning (status, body). What [anyseq top] and the tests poll
    with. *)
