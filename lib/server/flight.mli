(** The flight recorder: a bounded ring of recent per-request records.

    Every request the server replies to leaves one {!record} — id,
    connection, config label, optional wire trace id, the monotonic
    stamps of each stage it passed through, and its outcome. The ring
    holds the most recent [capacity] of them and overwrites the oldest,
    so the cost is flat and the data is always the {e last} moments
    before whatever went wrong — the post-incident counterpart to the
    aggregated stage histograms.

    The server dumps the ring to disk on SIGUSR1 and on deadline-miss
    bursts, and serves it live at [/debug/flight] on the admin
    endpoint. *)

type record = {
  fr_rid : int64;
  fr_cid : int;  (** connection id *)
  fr_config : string;  (** human-readable config label *)
  fr_trace : int64 option;  (** wire trace id, when the client sent one *)
  fr_accept_ns : int64;  (** frame fully read off the socket *)
  fr_decode_ns : int64;  (** request view decoded, config interned *)
  fr_enqueue_ns : int64;  (** admitted into the batcher *)
  fr_submit_ns : int64;  (** batch submitted to the service *)
  fr_done_ns : int64;  (** batch results available *)
  fr_reply_ns : int64;  (** reply enqueued to the connection writer *)
  fr_batch_jobs : int;
  fr_outcome : string;  (** "ok" or the wire error-code string *)
}

type t

val default_capacity : int
(** 1024 records. *)

val create : ?capacity:int -> unit -> t
(** Raises [Invalid_argument] on a non-positive capacity. *)

val capacity : t -> int

val record : t -> record -> unit
(** Append, overwriting the oldest record once full. Thread-safe. *)

val recorded : t -> int
(** Records ever written (not capped by capacity). *)

val snapshot : t -> record list
(** The ring's current contents, oldest first — at most [capacity]
    records. *)

val to_json : record list -> string
(** [{"records":[…]}]; stage stamps as raw nanosecond integers, trace
    ids in the 16-hex-digit form span attributes use. *)

val dump : t -> path:string -> (unit, string) result
(** Write [to_json (snapshot t)] to [path]. *)
