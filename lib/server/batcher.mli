(** The continuous batcher: a bounded multi-producer queue whose consumer
    side hands out {e batches}, not items.

    Connection readers {!push} requests as they arrive; dispatch workers
    block in {!next_batch}, which returns as soon as whichever fires
    first:

    - {b max batch} — [max_batch] items are waiting (queue pressure:
      a backlog is handed out immediately, no timer involved);
    - {b max wait} — [max_wait_us] elapsed since the first item of the
      forming batch arrived (a lone request leaves after ≤ 2 ms by
      default, so single in-flight requests keep low latency);
    - {b close} — the queue is draining; whatever is left goes out, then
      [None] tells workers to exit.

    Generic in the item type so the unit tests can drive it with plain
    ints, deterministically ([max_wait_us = 0] never waits). *)

type 'a t

val create : ?max_batch:int -> ?max_wait_us:int -> ?max_pending:int -> unit -> 'a t
(** Defaults: [max_batch] 64, [max_wait_us] 2000, [max_pending] 8192.
    All must be positive ([max_wait_us] ≥ 0). *)

val push : 'a t -> 'a -> bool
(** False when the queue is at [max_pending] (backpressure — the caller
    answers [Rejected]) or closed. Never blocks. *)

val take_one : 'a t -> 'a option
(** Block for the next single item, in arrival order — no batch window.
    [None] after {!close} once the queue is empty. The server's completion
    queue uses this: tickets come back one at a time, as submitted. *)

val next_batch : 'a t -> 'a list option
(** Block for the next batch, in arrival order. [None] after {!close}
    once the queue is empty — the consumer's termination signal. Safe for
    multiple concurrent consumers; each item goes to exactly one. *)

val close : 'a t -> unit
(** Stop accepting pushes and wake all waiting consumers. Items already
    queued are still handed out ("flush the queue" of graceful drain). *)

val depth : 'a t -> int
val is_closed : 'a t -> bool
