module Timer = Anyseq_util.Timer

type 'a t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  items : 'a Queue.t;
  max_batch : int;
  max_wait_us : int;
  max_pending : int;
  mutable closed : bool;
}

let create ?(max_batch = 64) ?(max_wait_us = 2000) ?(max_pending = 8192) () =
  if max_batch <= 0 then invalid_arg "Batcher.create: max_batch must be positive";
  if max_wait_us < 0 then invalid_arg "Batcher.create: max_wait_us must be non-negative";
  if max_pending <= 0 then invalid_arg "Batcher.create: max_pending must be positive";
  {
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    max_batch;
    max_wait_us;
    max_pending;
    closed = false;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let push t x =
  with_lock t (fun () ->
      if t.closed || Queue.length t.items >= t.max_pending then false
      else begin
        Queue.add x t.items;
        Condition.signal t.nonempty;
        true
      end)

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let depth t = with_lock t (fun () -> Queue.length t.items)
let is_closed t = with_lock t (fun () -> t.closed)

let take_up_to t n =
  let rec go k acc =
    if k = 0 || Queue.is_empty t.items then List.rev acc
    else go (k - 1) (Queue.pop t.items :: acc)
  in
  go n []

let take_one t =
  Mutex.lock t.mutex;
  let rec go () =
    if not (Queue.is_empty t.items) then begin
      let x = Queue.pop t.items in
      Mutex.unlock t.mutex;
      Some x
    end
    else if t.closed then begin
      Mutex.unlock t.mutex;
      None
    end
    else begin
      Condition.wait t.nonempty t.mutex;
      go ()
    end
  in
  go ()

(* The deadline loop cannot use [Condition.wait] (the stdlib has no timed
   wait), so it polls in ≤ 200 µs sleeps — coarse enough to be free, fine
   enough that a 2 ms window is respected within ~10%. *)
let next_batch t =
  Mutex.lock t.mutex;
  let rec wait_first () =
    if not (Queue.is_empty t.items) then `Go
    else if t.closed then `Stop
    else begin
      Condition.wait t.nonempty t.mutex;
      wait_first ()
    end
  in
  let rec form () =
    match wait_first () with
    | `Stop ->
        Mutex.unlock t.mutex;
        None
    | `Go ->
        let deadline =
          Int64.add (Timer.now_ns ()) (Int64.of_int (t.max_wait_us * 1000))
        in
        let rec fill () =
          let n = Queue.length t.items in
          if n >= t.max_batch || t.closed then ()
          else
            let remaining_ns = Int64.sub deadline (Timer.now_ns ()) in
            if Int64.compare remaining_ns 0L <= 0 then ()
            else begin
              Mutex.unlock t.mutex;
              Thread.delay (Float.min 2e-4 (Int64.to_float remaining_ns *. 1e-9));
              Mutex.lock t.mutex;
              fill ()
            end
        in
        fill ();
        let batch = take_up_to t t.max_batch in
        if batch = [] then form () (* a concurrent consumer won the race *)
        else begin
          Mutex.unlock t.mutex;
          Some batch
        end
  in
  form ()
