module Jsonv = Anyseq_util.Jsonv

(* One served request's life, as monotonic stamps. All_ns fields come
   from [Anyseq_util.Timer.now_ns]; a stage that never happened (e.g. an
   error reply short-circuiting before dispatch) keeps the previous
   stage's stamp, so stage deltas are never negative. *)
type record = {
  fr_rid : int64;
  fr_cid : int;  (** connection id *)
  fr_config : string;  (** human-readable config label *)
  fr_trace : int64 option;  (** wire trace id, when the client sent one *)
  fr_accept_ns : int64;  (** frame fully read off the socket *)
  fr_decode_ns : int64;  (** request view decoded, config interned *)
  fr_enqueue_ns : int64;  (** admitted into the batcher *)
  fr_submit_ns : int64;  (** batch submitted to the service *)
  fr_done_ns : int64;  (** batch results available *)
  fr_reply_ns : int64;  (** reply enqueued to the connection writer *)
  fr_batch_jobs : int;
  fr_outcome : string;  (** "ok" or the wire error-code string *)
}

(* Multi-producer bounded ring under a mutex: reply fan-out runs on one
   completer thread plus the occasional backpressured dispatch worker, so
   contention is negligible next to the alignment work each record
   represents. *)
type t = {
  lock : Mutex.t;
  slots : record option array;
  mutable next : int;  (** records ever written *)
}

let default_capacity = 1024

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Flight.create: capacity must be positive";
  { lock = Mutex.create (); slots = Array.make capacity None; next = 0 }

let capacity t = Array.length t.slots

let record t r =
  Mutex.lock t.lock;
  t.slots.(t.next mod Array.length t.slots) <- Some r;
  t.next <- t.next + 1;
  Mutex.unlock t.lock

let recorded t =
  Mutex.lock t.lock;
  let n = t.next in
  Mutex.unlock t.lock;
  n

let snapshot t =
  Mutex.lock t.lock;
  let cap = Array.length t.slots in
  let n = t.next in
  let kept = min n cap in
  let out =
    List.init kept (fun k ->
        match t.slots.((n - kept + k) mod cap) with
        | Some r -> r
        | None -> assert false (* slots below [next] are always filled *))
  in
  Mutex.unlock t.lock;
  out

let record_json b r =
  let stamp name v = Printf.bprintf b "\"%s\":%Ld," name v in
  Buffer.add_char b '{';
  Printf.bprintf b "\"rid\":%Ld,\"cid\":%d," r.fr_rid r.fr_cid;
  Printf.bprintf b "\"config\":\"%s\"," (Jsonv.escape_string r.fr_config);
  (match r.fr_trace with
  | Some tid -> Printf.bprintf b "\"trace_id\":\"%016Lx\"," tid
  | None -> ());
  stamp "accept_ns" r.fr_accept_ns;
  stamp "decode_ns" r.fr_decode_ns;
  stamp "enqueue_ns" r.fr_enqueue_ns;
  stamp "submit_ns" r.fr_submit_ns;
  stamp "done_ns" r.fr_done_ns;
  stamp "reply_ns" r.fr_reply_ns;
  Printf.bprintf b "\"batch_jobs\":%d,\"outcome\":\"%s\"}" r.fr_batch_jobs
    (Jsonv.escape_string r.fr_outcome)

let to_json records =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"records\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '\n';
      record_json b r)
    records;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let dump t ~path =
  match
    Out_channel.with_open_text path (fun oc -> output_string oc (to_json (snapshot t)))
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg
