(** The network alignment server.

    One process serves {!Anyseq_client.Wire} frames over any mix of
    Unix-domain and TCP listeners, feeding every request through one
    shared {!Anyseq_runtime.Service} — so all connections share one warm
    specialization cache (replicated per shard), one admission budget,
    and one metrics registry.

    Thread architecture (OS threads; the compute parallelism lives in the
    service's shard worker {e domains} and the wavefront tier):

    - {b acceptor} — one thread [select]ing over the listeners, so a stop
      request is noticed within ~100 ms without signals-in-syscalls games;
    - {b connection readers} — one per connection, blocking on frame
      reads; decoded requests are pushed into the shared {!Batcher}. A
      malformed frame costs exactly that connection. Config decoding
      happens here, against an interning table, so every distinct wire
      configuration maps to one physical [Config.t] and the
      specialization caches stay warm across connections;
    - {b dispatch workers} — [dispatch_workers] threads looping
      [Batcher.next_batch] → parse → [Service.submit_seqs]. The batcher
      closes a batch on max-size, max-wait (2 ms default) or drain —
      continuous batching: bursts group, lone requests leave quickly.
      Submit returns as soon as the batch's chunks are on the shard
      queues, so the worker forms the next batch while the shards
      execute this one — batches overlap instead of serializing;
    - {b completer} — one thread popping tickets off a completion queue
      in submission order, [Service.await]ing each and fanning its
      replies out;
    - {b connection writers} — one per connection draining a bounded
      reply queue, so one slow client never stalls the completer (an
      over-full reply queue or a 5 s send timeout kills that connection
      only).

    Request deadlines propagate: a request's [timeout_s], minus the time
    it spent queued here, becomes the [Service.job] deadline.

    {b Graceful drain} (SIGTERM/SIGINT via {!install_signal_handlers}, or
    {!stop}): stop accepting connections, answer new requests with
    [Draining], flush every already-accepted request through the service,
    deliver all replies, then close. Accepted requests are never
    dropped.

    {b Observability.} Every request is stamped at accept, decode,
    enqueue, submit, done and reply; the deltas feed the five
    [server/stage_*_us] histograms (decode/admit/queue/execute/reply),
    whose per-stage counts match requests replied through the batch path
    and whose stages sum to the request's wall time. The same stamps,
    plus config and outcome, land in a bounded {!Flight} ring — dumped
    to [$TMPDIR/anyseq-flight-<pid>.json] on SIGUSR1 (via
    {!install_signal_handlers}) or on a deadline-miss burst (≥ 8
    timeouts within a second, 5 s cooldown). An optional {!Admin}
    listener ([config.admin]) serves [/metrics] (Prometheus, per-shard
    gauges refreshed at scrape time), [/healthz] (503 while draining —
    the admin endpoint outlives the data plane during a drain),
    [/statusz] (the JSON snapshot [anyseq top] renders) and
    [/debug/flight]. Requests carrying a {!Anyseq_client.Wire}
    trace context get a completed [server.request] span (accept → reply,
    parented under the client's span, tagged [trace_id]) when tracing is
    enabled, and the id is stamped down through [service.batch] and
    [service.exec] spans. *)

module Addr = Anyseq_client.Addr

type config = {
  addrs : Addr.t list;  (** listeners; at least one *)
  max_batch : int;  (** batch size bound (default 64) *)
  max_wait_us : int;  (** batch formation window (default 2000) *)
  max_pending : int;  (** request queue bound — beyond it, [Rejected] (default 8192) *)
  dispatch_workers : int;  (** concurrent submit loops (default 1) *)
  shards : int;
      (** service lanes when [start] creates the service itself (default
          1; ≥ 2 spawns one worker domain per shard). Ignored when an
          explicit [?service] is passed — its own shard count wins. *)
  admin : Addr.t option;  (** admin/metrics listener (default none) *)
  flight_capacity : int;
      (** flight-recorder ring size (default {!Flight.default_capacity}) *)
}

val default_config :
  ?addrs:Addr.t list -> ?shards:int -> ?admin:Addr.t -> unit -> config

type t

val start : ?service:Anyseq_runtime.Service.t -> config -> (t, string) result
(** Bind all listeners and start serving. [service] defaults to a fresh
    [Service.create ~shards:cfg.shards ()] whose worker domains the
    server also shuts down on stop; passing one shares its cache/metrics
    with in-process work (and leaves its lifecycle to the caller).
    [Error] if any address fails to bind (none are left half-bound). *)

val addresses : t -> Addr.t list
(** Actually-bound addresses (TCP port 0 resolved to the real port). *)

val service : t -> Anyseq_runtime.Service.t
val metrics : t -> Anyseq_runtime.Metrics.t
(** The service's registry; server instruments live under [server/]. *)

val connections : t -> int
(** Currently open connections. *)

val flight : t -> Flight.t
(** The flight recorder (always on; the ring is cheap). *)

val admin_address : t -> Addr.t option
(** The admin listener's bound address, when one was configured. *)

val request_stop : t -> unit
(** Flag the server to drain. Async-signal-safe (one atomic store); the
    actual teardown happens on the thread inside {!wait}/{!stop}. *)

val install_signal_handlers : t -> unit
(** SIGTERM and SIGINT → {!request_stop}. *)

val wait : t -> unit
(** Block until a stop is requested, then perform the graceful drain:
    listeners closed (Unix socket paths unlinked), request queue flushed
    through the service, replies delivered, connections closed, threads
    joined, [Service.drain] completed. Idempotent across threads. *)

val stop : t -> unit
(** {!request_stop} then {!wait}. *)

val is_stopped : t -> bool
