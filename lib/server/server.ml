module Wire = Anyseq_client.Wire
module Addr = Anyseq_client.Addr
module Service = Anyseq_runtime.Service
module Rconfig = Anyseq_runtime.Config
module Rerror = Anyseq_runtime.Error
module Metrics = Anyseq_runtime.Metrics
module Trace = Anyseq_trace.Trace
module Timer = Anyseq_util.Timer
module Cigar = Anyseq_bio.Cigar
module Alignment = Anyseq_bio.Alignment
module Sequence = Anyseq_bio.Sequence
module Scheme = Anyseq_scoring.Scheme

type config = {
  addrs : Addr.t list;
  max_batch : int;
  max_wait_us : int;
  max_pending : int;
  dispatch_workers : int;
  shards : int;
  admin : Addr.t option;
  flight_capacity : int;
}

let default_config ?(addrs = []) ?(shards = 1) ?admin () =
  {
    addrs;
    max_batch = 64;
    max_wait_us = 2000;
    max_pending = 8192;
    dispatch_workers = 1;
    shards;
    admin;
    flight_capacity = Flight.default_capacity;
  }

(* A connection: the reader thread owns the socket's read side and the
   conn's lifetime; the writer thread drains [out] so a slow client blocks
   only its own writer, never a dispatch worker. *)
type conn = {
  cid : int;
  fd : Unix.file_descr;
  out : string Queue.t;
  out_mutex : Mutex.t;
  out_cond : Condition.t;
  out_limit : int;
  mutable out_closed : bool;  (** no further enqueues; writer flushes then exits *)
  mutable dead : bool;  (** write side failed; replies are dropped *)
}

(* An admitted request waiting for a dispatch worker. The view keeps the
   sequences as ranges of the raw frame payload — they are parsed straight
   into packed buffers at dispatch, never copied out as strings. The three
   stamps are the first stages of the request's latency decomposition:
   frame off the socket, config decoded/interned, admitted into the
   batcher. *)
type pending = {
  pview : Wire.request_view;
  pcfg : Rconfig.t;
  pconn : conn;
  p_accept_ns : int64;
  p_decode_ns : int64;
  enq_ns : int64;
}

(* A batch in flight inside the service: submitted, not yet awaited. The
   dispatch workers produce these; the completer consumes them in
   submission order, so replies leave in the order batches formed while
   the shards already chew on the next batch. *)
type inflight = {
  if_items : pending array;
  if_parsed : (Service.seq_job, Rerror.t) result array;
  if_ticket : Service.ticket;
  if_t0 : int64;  (** submit timestamp; queue/service split point *)
}

type t = {
  cfg : config;
  srv : Service.t;
  owns_srv : bool;  (** created by [start]; shut its worker domains down on stop *)
  batcher : pending Batcher.t;
  completions : inflight Batcher.t;
  listeners : (Unix.file_descr * Addr.t) list;
  stop_requested : bool Atomic.t;
  draining : bool Atomic.t;
  stopped : bool Atomic.t;
  conns : (int, conn * Thread.t) Hashtbl.t;
  conns_mutex : Mutex.t;
  next_cid : int Atomic.t;
  interned : (string, Rconfig.t) Hashtbl.t;
  intern_mutex : Mutex.t;
  stop_mutex : Mutex.t;
  mutable acceptor : Thread.t option;
  mutable workers : Thread.t list;
  mutable completer : Thread.t option;
  (* observability *)
  flight : Flight.t;
  mutable admin : Admin.t option;
  started_at : float;  (** wall clock, for /statusz uptime *)
  dump_flag : bool Atomic.t;  (** SIGUSR1 / burst trigger → acceptor dumps *)
  burst_window_ns : int64 Atomic.t;  (** start of the current miss window *)
  burst_misses : int Atomic.t;  (** deadline misses inside the window *)
  last_dump_ns : int64 Atomic.t;  (** burst-dump cooldown *)
}

let service t = t.srv
let metrics t = Service.metrics t.srv
let addresses t = List.map snd t.listeners
let is_stopped t = Atomic.get t.stopped
let flight t = t.flight
let admin_address t = Option.map Admin.address t.admin
let ctr t name = Metrics.counter (metrics t) ("server/" ^ name)
let hist t name = Metrics.histogram (metrics t) ("server/" ^ name)

let connections t =
  Mutex.lock t.conns_mutex;
  let n = Hashtbl.length t.conns in
  Mutex.unlock t.conns_mutex;
  n

let flight_dump_path () =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "anyseq-flight-%d.json" (Unix.getpid ()))

(* Deadline-miss burst trigger: [burst_threshold] Timeout outcomes inside
   one second arm the dump flag — the flight ring then still holds the
   requests leading up to the storm. A cooldown turns a sustained storm
   into one snapshot, not a disk flood. *)
let burst_threshold = 8
let burst_window_span_ns = 1_000_000_000L
let burst_cooldown_ns = 5_000_000_000L

let note_deadline_miss t now =
  if Int64.sub now (Atomic.get t.burst_window_ns) > burst_window_span_ns then begin
    Atomic.set t.burst_window_ns now;
    Atomic.set t.burst_misses 1
  end
  else if
    Atomic.fetch_and_add t.burst_misses 1 + 1 >= burst_threshold
    && Int64.sub now (Atomic.get t.last_dump_ns) > burst_cooldown_ns
  then begin
    Atomic.set t.last_dump_ns now;
    Metrics.incr (ctr t "flight_burst_triggers");
    Atomic.set t.dump_flag true
  end

let ignore_sigpipe () =
  match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception Invalid_argument _ -> ()

(* ---- config interning ----
   [Spec_cache] validates scheme identity physically, so decoding a fresh
   Scheme.t per request would thrash it. Interning by the canonical wire
   bytes gives every distinct wire configuration one physical Config.t for
   the server's lifetime — the cache sees repeat customers. *)

let intern_limit = 1024

let intern_config t wc =
  let key = Wire.config_key wc in
  Mutex.lock t.intern_mutex;
  let r =
    match Hashtbl.find_opt t.interned key with
    | Some cfg -> Ok cfg
    | None -> (
        match Wire.resolve_config wc with
        | Error _ as e -> e
        | Ok cfg ->
            (* A hostile client could fill the table with one-off configs;
               beyond the bound we serve uncached (correct, just slower). *)
            if Hashtbl.length t.interned < intern_limit then Hashtbl.add t.interned key cfg;
            Ok cfg)
  in
  Mutex.unlock t.intern_mutex;
  r

(* ---- reply path ---- *)

let enqueue_reply t conn frame =
  Mutex.lock conn.out_mutex;
  if conn.dead || conn.out_closed then begin
    Mutex.unlock conn.out_mutex;
    Metrics.incr (ctr t "replies_dropped")
  end
  else if Queue.length conn.out >= conn.out_limit then begin
    (* Slow consumer: its replies pile up faster than it reads. Cutting the
       connection is the only bounded-memory option. *)
    conn.dead <- true;
    Condition.broadcast conn.out_cond;
    Mutex.unlock conn.out_mutex;
    Metrics.incr (ctr t "slow_consumer_drops")
  end
  else begin
    Queue.add frame conn.out;
    Condition.signal conn.out_cond;
    Mutex.unlock conn.out_mutex;
    Metrics.incr (ctr t "requests_replied")
  end

let error_reply t conn ~rid code message =
  let reply =
    {
      Wire.rid;
      payload = Wire.Failure { code; message };
      queue_ns = 0L;
      service_ns = 0L;
      batch_jobs = 0;
    }
  in
  enqueue_reply t conn (Wire.encode_reply reply)

let writer_loop conn =
  let rec go () =
    Mutex.lock conn.out_mutex;
    let rec await () =
      if conn.dead then `Exit
      else if not (Queue.is_empty conn.out) then `Write (Queue.pop conn.out)
      else if conn.out_closed then `Exit
      else begin
        Condition.wait conn.out_cond conn.out_mutex;
        await ()
      end
    in
    let action = await () in
    Mutex.unlock conn.out_mutex;
    match action with
    | `Exit -> ()
    | `Write frame -> (
        match Wire.write_frame conn.fd frame with
        | Ok () -> go ()
        | Error _ ->
            Mutex.lock conn.out_mutex;
            conn.dead <- true;
            Mutex.unlock conn.out_mutex)
  in
  go ()

(* ---- dispatch workers ---- *)

(* Stage 1: parse and submit. Returns the ticket without waiting, so the
   worker can form the next batch while the shards execute this one. *)
let submit_batch t batch =
  let items = Array.of_list batch in
  let n = Array.length items in
  let t0 = Timer.now_ns () in
  (* Parse each request's sequences straight from its frame payload into
     packed code buffers — the same conversion (and the same error text)
     the service's string parse phase performs, minus the string copies.
     A bad sequence fails its own slot here and never reaches the
     service. *)
  let parsed =
    Array.map
      (fun p ->
        let v = p.pview in
        let alphabet = Scheme.alphabet p.pcfg.Rconfig.scheme in
        match
          ( Sequence.of_substring alphabet v.Wire.rv_payload ~pos:v.Wire.rv_query_pos
              ~len:v.Wire.rv_query_len,
            Sequence.of_substring alphabet v.Wire.rv_payload ~pos:v.Wire.rv_subject_pos
              ~len:v.Wire.rv_subject_len )
        with
        | q, s ->
            (* The deadline the client asked for started ticking on arrival,
               not on dispatch: hand the service only what is left of it. *)
            let timeout_s =
              Option.map
                (fun s' -> s' -. (Int64.to_float (Int64.sub t0 p.enq_ns) *. 1e-9))
                v.Wire.rv_timeout_s
            in
            Ok (Service.seq_job ~config:p.pcfg ?timeout_s ~query:q ~subject:s ())
        | exception Invalid_argument msg -> Error (Rerror.Bad_sequence msg))
      items
  in
  let live = Array.make n None in
  let live_n = ref 0 in
  Array.iter
    (fun r ->
      match r with
      | Ok j ->
          live.(!live_n) <- Some j;
          incr live_n
      | Error _ -> ())
    parsed;
  let jobs = Array.init !live_n (fun i -> Option.get live.(i)) in
  (* Thread the client's trace id down through the service spans: a batch
     mixes requests from many clients, so stamp the first traced request's
     id plus how many rode along — enough to find the batch from a trace
     id and vice versa. *)
  let trace_attrs =
    let traced =
      Array.to_list items
      |> List.filter_map (fun p -> p.pview.Wire.rv_trace)
    in
    match traced with
    | [] -> []
    | tc :: _ ->
        [
          ("trace_id", Trace.Str (Wire.trace_id_to_string tc.Wire.trace_id));
          ("traced", Trace.Int (List.length traced));
        ]
  in
  let ticket =
    Trace.with_span "server.dispatch"
      ~attrs:
        ([ ("jobs", Trace.Int n); ("queued", Trace.Int (Batcher.depth t.batcher)) ]
        @ trace_attrs)
      (fun () -> Service.submit_seqs t.srv ~attrs:trace_attrs jobs)
  in
  { if_items = items; if_parsed = parsed; if_ticket = ticket; if_t0 = t0 }

(* Stage 2: await the ticket and fan the replies out. Runs on the
   completer thread (or inline when the completion queue is saturated —
   natural backpressure on the submitting worker). *)
let reply_batch t inf =
  let items = inf.if_items and parsed = inf.if_parsed and t0 = inf.if_t0 in
  let n = Array.length items in
  let live_results =
    Trace.with_span "server.await"
      ~attrs:[ ("jobs", Trace.Int n) ]
      (fun () -> Service.await inf.if_ticket)
  in
  let results = Array.make n (Error Rerror.Rejected) in
  let k = ref 0 in
  Array.iteri
    (fun i r ->
      match r with
      | Ok _ ->
          results.(i) <- live_results.(!k);
          incr k
      | Error e -> results.(i) <- Error e)
    parsed;
  let done_ns = Timer.now_ns () in
  let service_ns = Int64.sub done_ns t0 in
  Metrics.observe (hist t "batch_jobs") n;
  Metrics.observe (hist t "service_us") (Int64.to_int service_ns / 1000);
  Trace.with_span "server.reply" ~attrs:[ ("jobs", Trace.Int n) ] @@ fun () ->
  Array.iteri
    (fun i p ->
      let payload, outcome =
        match results.(i) with
        | Ok (o : Service.outcome) ->
            let cigar =
              Option.map (fun a -> Cigar.to_string a.Alignment.cigar) o.Service.alignment
            in
            ( Wire.Result
                {
                  score = o.Service.score;
                  query_end = o.Service.query_end;
                  subject_end = o.Service.subject_end;
                  cigar;
                },
              "ok" )
        | Error e ->
            let code = Wire.error_code_of_runtime e in
            if code = Wire.Timeout then note_deadline_miss t done_ns;
            ( Wire.Failure { code; message = Rerror.to_string e },
              Wire.code_to_string code )
      in
      let queue_ns = Int64.sub t0 p.enq_ns in
      Metrics.observe (hist t "queue_us") (Int64.to_int queue_ns / 1000);
      let reply =
        { Wire.rid = p.pview.Wire.rv_id; payload; queue_ns; service_ns; batch_jobs = n }
      in
      enqueue_reply t p.pconn (Wire.encode_reply reply);
      (* Stage decomposition: one observation per stage per request, so
         every stage histogram's count matches requests replied through
         the batch path and the stages sum to the request's wall time. *)
      let reply_ns = Timer.now_ns () in
      let stage name a b =
        Metrics.observe (hist t name) (Int64.to_int (Int64.sub b a) / 1000)
      in
      stage "stage_decode_us" p.p_accept_ns p.p_decode_ns;
      stage "stage_admit_us" p.p_decode_ns p.enq_ns;
      stage "stage_queue_us" p.enq_ns t0;
      stage "stage_execute_us" t0 done_ns;
      stage "stage_reply_us" done_ns reply_ns;
      Flight.record t.flight
        {
          Flight.fr_rid = p.pview.Wire.rv_id;
          fr_cid = p.pconn.cid;
          fr_config = Rconfig.to_string p.pcfg;
          fr_trace = Option.map (fun tc -> tc.Wire.trace_id) p.pview.Wire.rv_trace;
          fr_accept_ns = p.p_accept_ns;
          fr_decode_ns = p.p_decode_ns;
          fr_enqueue_ns = p.enq_ns;
          fr_submit_ns = t0;
          fr_done_ns = done_ns;
          fr_reply_ns = reply_ns;
          fr_batch_jobs = n;
          fr_outcome = outcome;
        };
      (* The server half of the stitched cross-process trace: a completed
         [server.request] span covering accept → reply, parented under the
         client's span and tagged with its trace id. *)
      match p.pview.Wire.rv_trace with
      | Some tc when Trace.enabled () ->
          ignore
            (Trace.emit "server.request"
               ~parent:(Int64.to_int tc.Wire.parent_span)
               ~attrs:
                 [
                   ("trace_id", Trace.Str (Wire.trace_id_to_string tc.Wire.trace_id));
                   ("rid", Trace.Int (Int64.to_int p.pview.Wire.rv_id));
                   ("outcome", Trace.Str outcome);
                   ("batch_jobs", Trace.Int n);
                 ]
               ~start_ns:p.p_accept_ns ~end_ns:reply_ns)
      | _ -> ())
    items

let worker_loop t =
  let rec go () =
    match Batcher.next_batch t.batcher with
    | None -> ()
    | Some batch ->
        let inf = submit_batch t batch in
        (* The completion queue full means the completer is behind by
           [max_pending] batches: await this one right here instead of
           letting tickets pile up unboundedly. *)
        if not (Batcher.push t.completions inf) then reply_batch t inf;
        go ()
  in
  go ()

let completer_loop t =
  let rec go () =
    match Batcher.take_one t.completions with
    | None -> ()
    | Some inf ->
        reply_batch t inf;
        go ()
  in
  go ()

(* ---- connection readers ---- *)

(* Requests answered before dispatch (draining, bad config, full queue)
   still leave a flight record: the stages they never reached keep the
   last stamp they did reach, so stage deltas stay non-negative. *)
let record_early t conn ~rid ~trace ~config ~accept_ns ~decode_ns code =
  Flight.record t.flight
    {
      Flight.fr_rid = rid;
      fr_cid = conn.cid;
      fr_config = config;
      fr_trace = trace;
      fr_accept_ns = accept_ns;
      fr_decode_ns = decode_ns;
      fr_enqueue_ns = decode_ns;
      fr_submit_ns = decode_ns;
      fr_done_ns = decode_ns;
      fr_reply_ns = Timer.now_ns ();
      fr_batch_jobs = 0;
      fr_outcome = Wire.code_to_string code;
    }

let reader_loop t conn =
  let rec loop () =
    match Wire.read_raw_frame conn.fd with
    | Ok (version, kind, payload) when kind = Wire.kind_request -> (
        let accept_ns = Timer.now_ns () in
        match Wire.decode_request_view ~version payload with
        | Error _ ->
            (* The stream cannot be resynced after a corrupt frame: this
               connection dies; the server keeps serving everyone else. *)
            Metrics.incr (ctr t "bad_frames")
        | Ok req ->
            Metrics.incr (ctr t "requests_received");
            let rid = req.Wire.rv_id in
            let trace = Option.map (fun tc -> tc.Wire.trace_id) req.Wire.rv_trace in
            (if Atomic.get t.draining then begin
               Metrics.incr (ctr t "draining_rejected");
               error_reply t conn ~rid Wire.Draining "server is draining";
               record_early t conn ~rid ~trace ~config:"" ~accept_ns
                 ~decode_ns:accept_ns Wire.Draining
             end
             else
               match intern_config t req.Wire.rv_config with
               | Error msg ->
                   Metrics.incr (ctr t "bad_requests");
                   error_reply t conn ~rid Wire.Bad_request msg;
                   record_early t conn ~rid ~trace ~config:"" ~accept_ns
                     ~decode_ns:accept_ns Wire.Bad_request
               | Ok pcfg ->
                   let decode_ns = Timer.now_ns () in
                   let p =
                     {
                       pview = req;
                       pcfg;
                       pconn = conn;
                       p_accept_ns = accept_ns;
                       p_decode_ns = decode_ns;
                       enq_ns = Timer.now_ns ();
                     }
                   in
                   if Batcher.push t.batcher p then
                     Metrics.gauge_set (metrics t) "server/queue_depth"
                       (Batcher.depth t.batcher)
                   else begin
                     Metrics.incr (ctr t "queue_rejected");
                     error_reply t conn ~rid Wire.Rejected "server request queue full";
                     record_early t conn ~rid ~trace
                       ~config:(Rconfig.to_string pcfg) ~accept_ns ~decode_ns
                       Wire.Rejected
                   end);
            loop ())
    | Ok (_, _, _) ->
        (* A peer speaking the protocol backwards (or garbage we cannot
           resync past) gets disconnected. *)
        Metrics.incr (ctr t "bad_frames")
    | Error `Eof | Error (`Io _) -> ()
    | Error (`Malformed _) -> Metrics.incr (ctr t "bad_frames")
  in
  loop ()

let deregister t cid =
  Mutex.lock t.conns_mutex;
  Hashtbl.remove t.conns cid;
  Mutex.unlock t.conns_mutex

let conn_thread t conn writer =
  (try reader_loop t conn with _ -> ());
  (* Flush whatever the writer still owes this client, then close. *)
  Mutex.lock conn.out_mutex;
  conn.out_closed <- true;
  Condition.broadcast conn.out_cond;
  Mutex.unlock conn.out_mutex;
  Thread.join writer;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  deregister t conn.cid;
  Metrics.incr (ctr t "connections_closed");
  Metrics.gauge_set (metrics t) "server/connections" (connections t)

let register_conn t fd =
  Trace.with_span "server.accept" @@ fun () ->
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  (* Bound the damage of a client that stops reading: writes give up after
     5 s instead of parking the writer thread forever. *)
  (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0 with Unix.Unix_error _ -> ());
  let conn =
    {
      cid = Atomic.fetch_and_add t.next_cid 1;
      fd;
      out = Queue.create ();
      out_mutex = Mutex.create ();
      out_cond = Condition.create ();
      out_limit = 4 * t.cfg.max_pending;
      out_closed = false;
      dead = false;
    }
  in
  let writer = Thread.create writer_loop conn in
  let reader = Thread.create (fun () -> conn_thread t conn writer) () in
  Mutex.lock t.conns_mutex;
  Hashtbl.replace t.conns conn.cid (conn, reader);
  Mutex.unlock t.conns_mutex;
  Metrics.incr (ctr t "connections_accepted");
  Metrics.gauge_set (metrics t) "server/connections" (connections t)

let acceptor_loop t =
  let fds = List.map fst t.listeners in
  let rec go () =
    if Atomic.get t.stop_requested then ()
    else begin
      (* Flight dumps happen here, not in the signal handler: SIGUSR1 (and
         the burst trigger) only flip an atomic; the 0.1 s select cadence
         bounds how stale the dump can be. *)
      if Atomic.get t.dump_flag then begin
        Atomic.set t.dump_flag false;
        match Flight.dump t.flight ~path:(flight_dump_path ()) with
        | Ok () -> Metrics.incr (ctr t "flight_dumps")
        | Error _ -> Metrics.incr (ctr t "flight_dump_failures")
      end;
      (match Unix.select fds [] [] 0.1 with
      | readable, _, _ ->
          List.iter
            (fun lfd ->
              match Unix.accept lfd with
              | fd, _ -> register_conn t fd
              | exception Unix.Unix_error _ -> ())
            readable
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ()
    end
  in
  go ()

(* ---- admin endpoint ---- *)

let draining_now t = Atomic.get t.draining || Service.is_draining t.srv

(* /statusz: the dashboard snapshot [anyseq top] polls — one JSON object
   built straight off the registry and the service's stat snapshots. *)
let statusz_json t =
  let m = metrics t in
  let b = Buffer.create 4096 in
  let c name = match Metrics.find m name with Some v -> v | None -> 0 in
  Printf.bprintf b
    "{\"server\":{\"protocol_version\":%d,\"min_protocol_version\":%d,\"uptime_s\":%.1f,\"draining\":%b,\"connections\":%d,\"dispatch_queue\":%d,\"shards\":%d},"
    Wire.protocol_version Wire.min_protocol_version
    (Unix.gettimeofday () -. t.started_at)
    (draining_now t) (connections t) (Batcher.depth t.batcher)
    (Service.shards t.srv);
  Printf.bprintf b
    "\"requests\":{\"received\":%d,\"replied\":%d,\"bad\":%d,\"queue_rejected\":%d,\"draining_rejected\":%d,\"replies_dropped\":%d},"
    (c "server/requests_received") (c "server/requests_replied")
    (c "server/bad_requests") (c "server/queue_rejected")
    (c "server/draining_rejected") (c "server/replies_dropped");
  Buffer.add_string b "\"shards\":[";
  Array.iteri
    (fun i (s : Service.shard_stat) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b
        "{\"shard\":%d,\"jobs\":%d,\"queued\":%d,\"in_flight\":%d,\"enqueued\":%d,\"run_local\":%d,\"steals\":%d,\"stolen_from\":%d,\"minor_words\":%.0f}"
        s.Service.ss_shard s.Service.ss_jobs s.Service.ss_queued
        s.Service.ss_in_flight s.Service.ss_enqueued s.Service.ss_run_local
        s.Service.ss_steals s.Service.ss_stolen_from s.Service.ss_worker_minor_words)
    (Service.shard_stats t.srv);
  Buffer.add_string b "],";
  let cs = Service.cache_stats t.srv in
  Printf.bprintf b
    "\"cache\":{\"hits\":%d,\"misses\":%d,\"evictions\":%d,\"size\":%d,\"capacity\":%d},"
    cs.Anyseq_runtime.Spec_cache.hits cs.Anyseq_runtime.Spec_cache.misses
    cs.Anyseq_runtime.Spec_cache.evictions cs.Anyseq_runtime.Spec_cache.size
    cs.Anyseq_runtime.Spec_cache.capacity;
  Buffer.add_string b "\"tiers\":{";
  List.iteri
    (fun i tier ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "\"%s\":%d" tier (c ("runtime/tier_" ^ tier)))
    [ "bitparallel"; "banded"; "banded_cutoff"; "native"; "staged"; "simd"; "wavefront" ];
  Buffer.add_string b "},";
  Buffer.add_string b "\"stages\":{";
  List.iteri
    (fun i stage ->
      if i > 0 then Buffer.add_char b ',';
      match Metrics.find_hist m ("server/stage_" ^ stage ^ "_us") with
      | Some h ->
          Printf.bprintf b
            "\"%s\":{\"count\":%d,\"p50_us\":%.0f,\"p90_us\":%.0f,\"p99_us\":%.0f,\"max_us\":%d}"
            stage (Metrics.hist_count h)
            (Metrics.hist_quantile h 0.50)
            (Metrics.hist_quantile h 0.90)
            (Metrics.hist_quantile h 0.99)
            (Metrics.hist_max h)
      | None -> Printf.bprintf b "\"%s\":{\"count\":0}" stage)
    [ "decode"; "admit"; "queue"; "execute"; "reply" ];
  Buffer.add_string b "},";
  Printf.bprintf b
    "\"flight\":{\"capacity\":%d,\"recorded\":%d,\"dumps\":%d,\"burst_triggers\":%d},"
    (Flight.capacity t.flight) (Flight.recorded t.flight) (c "server/flight_dumps")
    (c "server/flight_burst_triggers");
  (* A network pipeline sharing this registry (an embedded run, or the
     CLI's own --admin endpoint reusing this renderer) exposes its phase
     progress; absent counters render nothing. *)
  (match Anyseq_network.Pipeline.status_json m with
  | Some net -> Printf.bprintf b "\"network\":%s," net
  | None -> ());
  Printf.bprintf b "\"build\":{\"ocaml\":\"%s\",\"word_size\":%d}}"
    Sys.ocaml_version Sys.word_size;
  Buffer.contents b

let admin_handler t path =
  match path with
  | "/metrics" ->
      (* Refresh scrape-time state so the exposition is a consistent
         snapshot: per-shard gauges match a concurrent [shard_stats], GC
         gauges match the live heap. *)
      Service.publish_shard_stats t.srv;
      Metrics.record_gc (metrics t);
      Admin.ok
        ~content_type:"text/plain; version=0.0.4; charset=utf-8"
        (Metrics.dump_prometheus (metrics t))
  | "/healthz" ->
      if draining_now t then
        Some { Admin.status = 503; content_type = "text/plain"; body = "draining\n" }
      else Admin.ok "ok\n"
  | "/statusz" -> Admin.ok ~content_type:"application/json" (statusz_json t)
  | "/debug/flight" ->
      Admin.ok ~content_type:"application/json"
        (Flight.to_json (Flight.snapshot t.flight))
  | _ -> None

(* ---- lifecycle ---- *)

let request_stop t = Atomic.set t.stop_requested true

let install_signal_handlers t =
  let handle = Sys.Signal_handle (fun _ -> request_stop t) in
  (try Sys.set_signal Sys.sigterm handle with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint handle with Invalid_argument _ -> ());
  (* SIGUSR1 → flight-recorder dump. Only an atomic store happens in the
     handler; the acceptor loop writes the file. *)
  try
    Sys.set_signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> Atomic.set t.dump_flag true))
  with Invalid_argument _ -> ()

(* The drain sequence. Order matters:
   1. flag draining — readers answer new requests with [Draining];
   2. stop the acceptor and close the listeners;
   3. close the request batcher — workers flush the remaining queue
      (submitting every batch) and exit;
   4. close the completion queue — the completer awaits every
      outstanding ticket, fans its replies out, and exits;
   5. drain the service — every admitted chunk has left — and, when the
      server created the service, join its shard worker domains;
   6. wake the readers (SHUT_RD keeps the write side alive so their
      writers can still flush), join them; each closes its own socket. *)
let do_stop t =
  Mutex.lock t.stop_mutex;
  let first = not (Atomic.get t.stopped) in
  if first then begin
    Atomic.set t.draining true;
    Atomic.set t.stop_requested true;
    (match t.acceptor with Some th -> Thread.join th | None -> ());
    List.iter
      (fun (fd, addr) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Addr.unlink_if_socket addr)
      t.listeners;
    Batcher.close t.batcher;
    List.iter Thread.join t.workers;
    Batcher.close t.completions;
    (match t.completer with Some th -> Thread.join th | None -> ());
    if t.owns_srv then Service.shutdown t.srv else Service.drain t.srv;
    let snapshot =
      Mutex.lock t.conns_mutex;
      let l = Hashtbl.fold (fun _ v acc -> v :: acc) t.conns [] in
      Mutex.unlock t.conns_mutex;
      l
    in
    List.iter
      (fun (conn, reader) ->
        (try Unix.shutdown conn.fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ());
        Thread.join reader)
      snapshot;
    (* The admin endpoint outlives the data plane so /healthz reports the
       drain in progress; it goes down last. *)
    (match t.admin with Some a -> Admin.stop a | None -> ());
    Atomic.set t.stopped true
  end;
  Mutex.unlock t.stop_mutex

let rec wait t =
  if Atomic.get t.stopped then ()
  else if Atomic.get t.stop_requested then do_stop t
  else begin
    Thread.delay 0.05;
    wait t
  end

let stop t =
  request_stop t;
  do_stop t

let start ?service cfg =
  if cfg.addrs = [] then Error "Server.start: no listen addresses"
  else if cfg.max_batch <= 0 || cfg.max_pending <= 0 || cfg.dispatch_workers <= 0
          || cfg.max_wait_us < 0 || cfg.shards <= 0 || cfg.flight_capacity <= 0
  then Error "Server.start: batch/pending/workers/shards/flight must be positive"
  else begin
    ignore_sigpipe ();
    let rec bind acc = function
      | [] -> Ok (List.rev acc)
      | a :: rest -> (
          match Addr.listen a with
          | Ok (fd, bound) -> bind ((fd, bound) :: acc) rest
          | Error msg ->
              List.iter
                (fun (fd, b) ->
                  (try Unix.close fd with Unix.Unix_error _ -> ());
                  Addr.unlink_if_socket b)
                acc;
              Error msg)
    in
    match bind [] cfg.addrs with
    | Error _ as e -> e
    | Ok listeners ->
        let srv, owns_srv =
          match service with
          | Some s -> (s, false)
          | None -> (Service.create ~shards:cfg.shards (), true)
        in
        let t =
          {
            cfg;
            srv;
            owns_srv;
            batcher =
              Batcher.create ~max_batch:cfg.max_batch ~max_wait_us:cfg.max_wait_us
                ~max_pending:cfg.max_pending ();
            completions =
              (* One slot per possible in-flight batch; batches come one
                 per worker plus whatever the service admits. *)
              Batcher.create ~max_batch:1 ~max_wait_us:0 ~max_pending:cfg.max_pending ();
            listeners;
            stop_requested = Atomic.make false;
            draining = Atomic.make false;
            stopped = Atomic.make false;
            conns = Hashtbl.create 32;
            conns_mutex = Mutex.create ();
            next_cid = Atomic.make 1;
            interned = Hashtbl.create 16;
            intern_mutex = Mutex.create ();
            stop_mutex = Mutex.create ();
            acceptor = None;
            workers = [];
            completer = None;
            flight = Flight.create ~capacity:cfg.flight_capacity ();
            admin = None;
            started_at = Unix.gettimeofday ();
            dump_flag = Atomic.make false;
            burst_window_ns = Atomic.make 0L;
            burst_misses = Atomic.make 0;
            last_dump_ns = Atomic.make 0L;
          }
        in
        let admin_ok =
          match cfg.admin with
          | None -> Ok ()
          | Some a -> (
              match Admin.start ~addr:a ~handler:(fun path -> admin_handler t path) with
              | Ok adm ->
                  t.admin <- Some adm;
                  Ok ()
              | Error msg -> Error ("Server.start: admin listener: " ^ msg))
        in
        (match admin_ok with
        | Error msg ->
            List.iter
              (fun (fd, b) ->
                (try Unix.close fd with Unix.Unix_error _ -> ());
                Addr.unlink_if_socket b)
              listeners;
            if owns_srv then Service.shutdown srv;
            Error msg
        | Ok () ->
            t.workers <-
              List.init cfg.dispatch_workers (fun _ -> Thread.create worker_loop t);
            t.completer <- Some (Thread.create completer_loop t);
            t.acceptor <- Some (Thread.create acceptor_loop t);
            Ok t)
  end
