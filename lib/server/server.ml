module Wire = Anyseq_client.Wire
module Addr = Anyseq_client.Addr
module Service = Anyseq_runtime.Service
module Rconfig = Anyseq_runtime.Config
module Rerror = Anyseq_runtime.Error
module Metrics = Anyseq_runtime.Metrics
module Trace = Anyseq_trace.Trace
module Timer = Anyseq_util.Timer
module Cigar = Anyseq_bio.Cigar
module Alignment = Anyseq_bio.Alignment
module Sequence = Anyseq_bio.Sequence
module Scheme = Anyseq_scoring.Scheme

type config = {
  addrs : Addr.t list;
  max_batch : int;
  max_wait_us : int;
  max_pending : int;
  dispatch_workers : int;
  shards : int;
}

let default_config ?(addrs = []) ?(shards = 1) () =
  { addrs; max_batch = 64; max_wait_us = 2000; max_pending = 8192; dispatch_workers = 1; shards }

(* A connection: the reader thread owns the socket's read side and the
   conn's lifetime; the writer thread drains [out] so a slow client blocks
   only its own writer, never a dispatch worker. *)
type conn = {
  cid : int;
  fd : Unix.file_descr;
  out : string Queue.t;
  out_mutex : Mutex.t;
  out_cond : Condition.t;
  out_limit : int;
  mutable out_closed : bool;  (** no further enqueues; writer flushes then exits *)
  mutable dead : bool;  (** write side failed; replies are dropped *)
}

(* An admitted request waiting for a dispatch worker. The view keeps the
   sequences as ranges of the raw frame payload — they are parsed straight
   into packed buffers at dispatch, never copied out as strings. *)
type pending = { pview : Wire.request_view; pcfg : Rconfig.t; pconn : conn; enq_ns : int64 }

(* A batch in flight inside the service: submitted, not yet awaited. The
   dispatch workers produce these; the completer consumes them in
   submission order, so replies leave in the order batches formed while
   the shards already chew on the next batch. *)
type inflight = {
  if_items : pending array;
  if_parsed : (Service.seq_job, Rerror.t) result array;
  if_ticket : Service.ticket;
  if_t0 : int64;  (** submit timestamp; queue/service split point *)
}

type t = {
  cfg : config;
  srv : Service.t;
  owns_srv : bool;  (** created by [start]; shut its worker domains down on stop *)
  batcher : pending Batcher.t;
  completions : inflight Batcher.t;
  listeners : (Unix.file_descr * Addr.t) list;
  stop_requested : bool Atomic.t;
  draining : bool Atomic.t;
  stopped : bool Atomic.t;
  conns : (int, conn * Thread.t) Hashtbl.t;
  conns_mutex : Mutex.t;
  next_cid : int Atomic.t;
  interned : (string, Rconfig.t) Hashtbl.t;
  intern_mutex : Mutex.t;
  stop_mutex : Mutex.t;
  mutable acceptor : Thread.t option;
  mutable workers : Thread.t list;
  mutable completer : Thread.t option;
}

let service t = t.srv
let metrics t = Service.metrics t.srv
let addresses t = List.map snd t.listeners
let is_stopped t = Atomic.get t.stopped
let ctr t name = Metrics.counter (metrics t) ("server/" ^ name)
let hist t name = Metrics.histogram (metrics t) ("server/" ^ name)

let connections t =
  Mutex.lock t.conns_mutex;
  let n = Hashtbl.length t.conns in
  Mutex.unlock t.conns_mutex;
  n

let ignore_sigpipe () =
  match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception Invalid_argument _ -> ()

(* ---- config interning ----
   [Spec_cache] validates scheme identity physically, so decoding a fresh
   Scheme.t per request would thrash it. Interning by the canonical wire
   bytes gives every distinct wire configuration one physical Config.t for
   the server's lifetime — the cache sees repeat customers. *)

let intern_limit = 1024

let intern_config t wc =
  let key = Wire.config_key wc in
  Mutex.lock t.intern_mutex;
  let r =
    match Hashtbl.find_opt t.interned key with
    | Some cfg -> Ok cfg
    | None -> (
        match Wire.resolve_config wc with
        | Error _ as e -> e
        | Ok cfg ->
            (* A hostile client could fill the table with one-off configs;
               beyond the bound we serve uncached (correct, just slower). *)
            if Hashtbl.length t.interned < intern_limit then Hashtbl.add t.interned key cfg;
            Ok cfg)
  in
  Mutex.unlock t.intern_mutex;
  r

(* ---- reply path ---- *)

let enqueue_reply t conn frame =
  Mutex.lock conn.out_mutex;
  if conn.dead || conn.out_closed then begin
    Mutex.unlock conn.out_mutex;
    Metrics.incr (ctr t "replies_dropped")
  end
  else if Queue.length conn.out >= conn.out_limit then begin
    (* Slow consumer: its replies pile up faster than it reads. Cutting the
       connection is the only bounded-memory option. *)
    conn.dead <- true;
    Condition.broadcast conn.out_cond;
    Mutex.unlock conn.out_mutex;
    Metrics.incr (ctr t "slow_consumer_drops")
  end
  else begin
    Queue.add frame conn.out;
    Condition.signal conn.out_cond;
    Mutex.unlock conn.out_mutex;
    Metrics.incr (ctr t "requests_replied")
  end

let error_reply t conn ~rid code message =
  let reply =
    {
      Wire.rid;
      payload = Wire.Failure { code; message };
      queue_ns = 0L;
      service_ns = 0L;
      batch_jobs = 0;
    }
  in
  enqueue_reply t conn (Wire.encode_reply reply)

let writer_loop conn =
  let rec go () =
    Mutex.lock conn.out_mutex;
    let rec await () =
      if conn.dead then `Exit
      else if not (Queue.is_empty conn.out) then `Write (Queue.pop conn.out)
      else if conn.out_closed then `Exit
      else begin
        Condition.wait conn.out_cond conn.out_mutex;
        await ()
      end
    in
    let action = await () in
    Mutex.unlock conn.out_mutex;
    match action with
    | `Exit -> ()
    | `Write frame -> (
        match Wire.write_frame conn.fd frame with
        | Ok () -> go ()
        | Error _ ->
            Mutex.lock conn.out_mutex;
            conn.dead <- true;
            Mutex.unlock conn.out_mutex)
  in
  go ()

(* ---- dispatch workers ---- *)

(* Stage 1: parse and submit. Returns the ticket without waiting, so the
   worker can form the next batch while the shards execute this one. *)
let submit_batch t batch =
  let items = Array.of_list batch in
  let n = Array.length items in
  let t0 = Timer.now_ns () in
  (* Parse each request's sequences straight from its frame payload into
     packed code buffers — the same conversion (and the same error text)
     the service's string parse phase performs, minus the string copies.
     A bad sequence fails its own slot here and never reaches the
     service. *)
  let parsed =
    Array.map
      (fun p ->
        let v = p.pview in
        let alphabet = Scheme.alphabet p.pcfg.Rconfig.scheme in
        match
          ( Sequence.of_substring alphabet v.Wire.rv_payload ~pos:v.Wire.rv_query_pos
              ~len:v.Wire.rv_query_len,
            Sequence.of_substring alphabet v.Wire.rv_payload ~pos:v.Wire.rv_subject_pos
              ~len:v.Wire.rv_subject_len )
        with
        | q, s ->
            (* The deadline the client asked for started ticking on arrival,
               not on dispatch: hand the service only what is left of it. *)
            let timeout_s =
              Option.map
                (fun s' -> s' -. (Int64.to_float (Int64.sub t0 p.enq_ns) *. 1e-9))
                v.Wire.rv_timeout_s
            in
            Ok (Service.seq_job ~config:p.pcfg ?timeout_s ~query:q ~subject:s ())
        | exception Invalid_argument msg -> Error (Rerror.Bad_sequence msg))
      items
  in
  let live = Array.make n None in
  let live_n = ref 0 in
  Array.iter
    (fun r ->
      match r with
      | Ok j ->
          live.(!live_n) <- Some j;
          incr live_n
      | Error _ -> ())
    parsed;
  let jobs = Array.init !live_n (fun i -> Option.get live.(i)) in
  let ticket =
    Trace.with_span "server.dispatch"
      ~attrs:[ ("jobs", Trace.Int n); ("queued", Trace.Int (Batcher.depth t.batcher)) ]
      (fun () -> Service.submit_seqs t.srv jobs)
  in
  { if_items = items; if_parsed = parsed; if_ticket = ticket; if_t0 = t0 }

(* Stage 2: await the ticket and fan the replies out. Runs on the
   completer thread (or inline when the completion queue is saturated —
   natural backpressure on the submitting worker). *)
let reply_batch t inf =
  let items = inf.if_items and parsed = inf.if_parsed and t0 = inf.if_t0 in
  let n = Array.length items in
  let live_results =
    Trace.with_span "server.await"
      ~attrs:[ ("jobs", Trace.Int n) ]
      (fun () -> Service.await inf.if_ticket)
  in
  let results = Array.make n (Error Rerror.Rejected) in
  let k = ref 0 in
  Array.iteri
    (fun i r ->
      match r with
      | Ok _ ->
          results.(i) <- live_results.(!k);
          incr k
      | Error e -> results.(i) <- Error e)
    parsed;
  let service_ns = Int64.sub (Timer.now_ns ()) t0 in
  Metrics.observe (hist t "batch_jobs") n;
  Metrics.observe (hist t "service_us") (Int64.to_int service_ns / 1000);
  Trace.with_span "server.reply" ~attrs:[ ("jobs", Trace.Int n) ] @@ fun () ->
  Array.iteri
    (fun i p ->
      let payload =
        match results.(i) with
        | Ok (o : Service.outcome) ->
            let cigar =
              Option.map (fun a -> Cigar.to_string a.Alignment.cigar) o.Service.alignment
            in
            Wire.Result
              {
                score = o.Service.score;
                query_end = o.Service.query_end;
                subject_end = o.Service.subject_end;
                cigar;
              }
        | Error e ->
            Wire.Failure
              { code = Wire.error_code_of_runtime e; message = Rerror.to_string e }
      in
      let queue_ns = Int64.sub t0 p.enq_ns in
      Metrics.observe (hist t "queue_us") (Int64.to_int queue_ns / 1000);
      let reply =
        { Wire.rid = p.pview.Wire.rv_id; payload; queue_ns; service_ns; batch_jobs = n }
      in
      enqueue_reply t p.pconn (Wire.encode_reply reply))
    items

let worker_loop t =
  let rec go () =
    match Batcher.next_batch t.batcher with
    | None -> ()
    | Some batch ->
        let inf = submit_batch t batch in
        (* The completion queue full means the completer is behind by
           [max_pending] batches: await this one right here instead of
           letting tickets pile up unboundedly. *)
        if not (Batcher.push t.completions inf) then reply_batch t inf;
        go ()
  in
  go ()

let completer_loop t =
  let rec go () =
    match Batcher.take_one t.completions with
    | None -> ()
    | Some inf ->
        reply_batch t inf;
        go ()
  in
  go ()

(* ---- connection readers ---- *)

let reader_loop t conn =
  let rec loop () =
    match Wire.read_raw_frame conn.fd with
    | Ok (kind, payload) when kind = Wire.kind_request -> (
        match Wire.decode_request_view payload with
        | Error _ ->
            (* The stream cannot be resynced after a corrupt frame: this
               connection dies; the server keeps serving everyone else. *)
            Metrics.incr (ctr t "bad_frames")
        | Ok req ->
            Metrics.incr (ctr t "requests_received");
            (if Atomic.get t.draining then begin
               Metrics.incr (ctr t "draining_rejected");
               error_reply t conn ~rid:req.Wire.rv_id Wire.Draining "server is draining"
             end
             else
               match intern_config t req.Wire.rv_config with
               | Error msg ->
                   Metrics.incr (ctr t "bad_requests");
                   error_reply t conn ~rid:req.Wire.rv_id Wire.Bad_request msg
               | Ok pcfg ->
                   let p = { pview = req; pcfg; pconn = conn; enq_ns = Timer.now_ns () } in
                   if Batcher.push t.batcher p then
                     Metrics.gauge_set (metrics t) "server/queue_depth"
                       (Batcher.depth t.batcher)
                   else begin
                     Metrics.incr (ctr t "queue_rejected");
                     error_reply t conn ~rid:req.Wire.rv_id Wire.Rejected
                       "server request queue full"
                   end);
            loop ())
    | Ok (_, _) ->
        (* A peer speaking the protocol backwards (or garbage we cannot
           resync past) gets disconnected. *)
        Metrics.incr (ctr t "bad_frames")
    | Error `Eof | Error (`Io _) -> ()
    | Error (`Malformed _) -> Metrics.incr (ctr t "bad_frames")
  in
  loop ()

let deregister t cid =
  Mutex.lock t.conns_mutex;
  Hashtbl.remove t.conns cid;
  Mutex.unlock t.conns_mutex

let conn_thread t conn writer =
  (try reader_loop t conn with _ -> ());
  (* Flush whatever the writer still owes this client, then close. *)
  Mutex.lock conn.out_mutex;
  conn.out_closed <- true;
  Condition.broadcast conn.out_cond;
  Mutex.unlock conn.out_mutex;
  Thread.join writer;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  deregister t conn.cid;
  Metrics.incr (ctr t "connections_closed");
  Metrics.gauge_set (metrics t) "server/connections" (connections t)

let register_conn t fd =
  Trace.with_span "server.accept" @@ fun () ->
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  (* Bound the damage of a client that stops reading: writes give up after
     5 s instead of parking the writer thread forever. *)
  (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0 with Unix.Unix_error _ -> ());
  let conn =
    {
      cid = Atomic.fetch_and_add t.next_cid 1;
      fd;
      out = Queue.create ();
      out_mutex = Mutex.create ();
      out_cond = Condition.create ();
      out_limit = 4 * t.cfg.max_pending;
      out_closed = false;
      dead = false;
    }
  in
  let writer = Thread.create writer_loop conn in
  let reader = Thread.create (fun () -> conn_thread t conn writer) () in
  Mutex.lock t.conns_mutex;
  Hashtbl.replace t.conns conn.cid (conn, reader);
  Mutex.unlock t.conns_mutex;
  Metrics.incr (ctr t "connections_accepted");
  Metrics.gauge_set (metrics t) "server/connections" (connections t)

let acceptor_loop t =
  let fds = List.map fst t.listeners in
  let rec go () =
    if Atomic.get t.stop_requested then ()
    else begin
      (match Unix.select fds [] [] 0.1 with
      | readable, _, _ ->
          List.iter
            (fun lfd ->
              match Unix.accept lfd with
              | fd, _ -> register_conn t fd
              | exception Unix.Unix_error _ -> ())
            readable
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ()
    end
  in
  go ()

(* ---- lifecycle ---- *)

let request_stop t = Atomic.set t.stop_requested true

let install_signal_handlers t =
  let handle = Sys.Signal_handle (fun _ -> request_stop t) in
  (try Sys.set_signal Sys.sigterm handle with Invalid_argument _ -> ());
  try Sys.set_signal Sys.sigint handle with Invalid_argument _ -> ()

(* The drain sequence. Order matters:
   1. flag draining — readers answer new requests with [Draining];
   2. stop the acceptor and close the listeners;
   3. close the request batcher — workers flush the remaining queue
      (submitting every batch) and exit;
   4. close the completion queue — the completer awaits every
      outstanding ticket, fans its replies out, and exits;
   5. drain the service — every admitted chunk has left — and, when the
      server created the service, join its shard worker domains;
   6. wake the readers (SHUT_RD keeps the write side alive so their
      writers can still flush), join them; each closes its own socket. *)
let do_stop t =
  Mutex.lock t.stop_mutex;
  let first = not (Atomic.get t.stopped) in
  if first then begin
    Atomic.set t.draining true;
    Atomic.set t.stop_requested true;
    (match t.acceptor with Some th -> Thread.join th | None -> ());
    List.iter
      (fun (fd, addr) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Addr.unlink_if_socket addr)
      t.listeners;
    Batcher.close t.batcher;
    List.iter Thread.join t.workers;
    Batcher.close t.completions;
    (match t.completer with Some th -> Thread.join th | None -> ());
    if t.owns_srv then Service.shutdown t.srv else Service.drain t.srv;
    let snapshot =
      Mutex.lock t.conns_mutex;
      let l = Hashtbl.fold (fun _ v acc -> v :: acc) t.conns [] in
      Mutex.unlock t.conns_mutex;
      l
    in
    List.iter
      (fun (conn, reader) ->
        (try Unix.shutdown conn.fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ());
        Thread.join reader)
      snapshot;
    Atomic.set t.stopped true
  end;
  Mutex.unlock t.stop_mutex

let rec wait t =
  if Atomic.get t.stopped then ()
  else if Atomic.get t.stop_requested then do_stop t
  else begin
    Thread.delay 0.05;
    wait t
  end

let stop t =
  request_stop t;
  do_stop t

let start ?service cfg =
  if cfg.addrs = [] then Error "Server.start: no listen addresses"
  else if cfg.max_batch <= 0 || cfg.max_pending <= 0 || cfg.dispatch_workers <= 0
          || cfg.max_wait_us < 0 || cfg.shards <= 0
  then Error "Server.start: batch/pending/workers/shards must be positive"
  else begin
    ignore_sigpipe ();
    let rec bind acc = function
      | [] -> Ok (List.rev acc)
      | a :: rest -> (
          match Addr.listen a with
          | Ok (fd, bound) -> bind ((fd, bound) :: acc) rest
          | Error msg ->
              List.iter
                (fun (fd, b) ->
                  (try Unix.close fd with Unix.Unix_error _ -> ());
                  Addr.unlink_if_socket b)
                acc;
              Error msg)
    in
    match bind [] cfg.addrs with
    | Error _ as e -> e
    | Ok listeners ->
        let srv, owns_srv =
          match service with
          | Some s -> (s, false)
          | None -> (Service.create ~shards:cfg.shards (), true)
        in
        let t =
          {
            cfg;
            srv;
            owns_srv;
            batcher =
              Batcher.create ~max_batch:cfg.max_batch ~max_wait_us:cfg.max_wait_us
                ~max_pending:cfg.max_pending ();
            completions =
              (* One slot per possible in-flight batch; batches come one
                 per worker plus whatever the service admits. *)
              Batcher.create ~max_batch:1 ~max_wait_us:0 ~max_pending:cfg.max_pending ();
            listeners;
            stop_requested = Atomic.make false;
            draining = Atomic.make false;
            stopped = Atomic.make false;
            conns = Hashtbl.create 32;
            conns_mutex = Mutex.create ();
            next_cid = Atomic.make 1;
            interned = Hashtbl.create 16;
            intern_mutex = Mutex.create ();
            stop_mutex = Mutex.create ();
            acceptor = None;
            workers = [];
            completer = None;
          }
        in
        t.workers <- List.init cfg.dispatch_workers (fun _ -> Thread.create worker_loop t);
        t.completer <- Some (Thread.create completer_loop t);
        t.acceptor <- Some (Thread.create acceptor_loop t);
        Ok t
  end
