type space = Global_space | Shared_space

type buffer = { data : int array; space : space; base : int }
(* [base] gives distinct buffers distinct address ranges so coalescing
   bookkeeping can mix accesses from several buffers in one phase. *)

let next_base = ref 0

let make_buffer space data =
  (* 128-byte-aligned bases, as cudaMalloc guarantees — keeps the segment
     accounting of distinct buffers independent and deterministic. *)
  let base = !next_base in
  next_base := !next_base + (((Array.length data + 63) / 32) + 1) * 32;
  { data; space; base }

let alloc_global n = make_buffer Global_space (Array.make n 0)
let global_of_array a = make_buffer Global_space a
let to_array b = Array.copy b.data
let buffer_size b = Array.length b.data

type block_state = {
  counters : Counters.t;
  warp_size : int;
  mutable phase : int;
  (* (warp, instruction index, 128-byte segment) triples: the k-th global
     access of each thread in a warp is modelled as one warp instruction,
     and its transactions are the distinct segments across the warp. *)
  mutable segments : (int * int * int, unit) Hashtbl.t;
}

type ctx = {
  block_idx : int;
  thread_idx : int;
  block_dim : int;
  grid_dim : int;
  mutable access_seq : int;
  state : block_state;
}

let block_idx c = c.block_idx
let thread_idx c = c.thread_idx
let block_dim c = c.block_dim
let grid_dim c = c.grid_dim

let check (c : ctx) (b : buffer) i what =
  if i < 0 || i >= Array.length b.data then
    invalid_arg
      (Printf.sprintf "gpusim: %s out of bounds (index %d, size %d, block %d thread %d)"
         what i (Array.length b.data) c.block_idx c.thread_idx)

let note_access c b i ~is_write =
  let st = c.state in
  match b.space with
  | Shared_space -> st.counters.Counters.shared_accesses <- st.counters.Counters.shared_accesses + 1
  | Global_space ->
      if is_write then st.counters.Counters.global_writes <- st.counters.Counters.global_writes + 1
      else st.counters.Counters.global_reads <- st.counters.Counters.global_reads + 1;
      let warp = c.thread_idx / st.warp_size in
      let seq = c.access_seq in
      c.access_seq <- seq + 1;
      (* 128-byte segments of 4-byte words: 32 words. *)
      let segment = (b.base + i) / 32 in
      let key = (warp, seq, segment) in
      if not (Hashtbl.mem st.segments key) then begin
        Hashtbl.add st.segments key ();
        st.counters.Counters.global_transactions <-
          st.counters.Counters.global_transactions + 1
      end

let read c b i =
  check c b i "read";
  note_access c b i ~is_write:false;
  Array.unsafe_get b.data i

let write c b i v =
  check c b i "write";
  note_access c b i ~is_write:true;
  Array.unsafe_set b.data i v

let work c ~cells ~ops =
  c.state.counters.Counters.cells <- c.state.counters.Counters.cells + cells;
  c.state.counters.Counters.cell_ops <- c.state.counters.Counters.cell_ops + (cells * ops)

let divergent c =
  c.state.counters.Counters.divergent_branches <-
    c.state.counters.Counters.divergent_branches + 1

type _ Effect.t += Barrier : unit Effect.t

let barrier _ctx = Effect.perform Barrier

type launch_result = { counters : Counters.t; elapsed_phases : int }

let launch ~(device : Device.t) ~grid ~block ~shared_words body =
  if grid <= 0 || block <= 0 then invalid_arg "gpusim: empty launch";
  if shared_words > device.Device.shared_mem_words then
    invalid_arg
      (Printf.sprintf "gpusim: shared memory request %d exceeds device limit %d"
         shared_words device.Device.shared_mem_words);
  let module Trace = Anyseq_trace.Trace in
  let frame =
    Trace.start "gpusim.launch"
      ~attrs:
        [
          ("grid", Trace.Int grid); ("block", Trace.Int block);
          ("shared_words", Trace.Int shared_words);
        ]
  in
  Fun.protect ~finally:(fun () -> Trace.finish frame) @@ fun () ->
  let counters = Counters.create () in
  let phases = ref 0 in
  for b = 0 to grid - 1 do
    let state =
      {
        counters;
        warp_size = device.Device.warp_size;
        phase = 0;
        segments = Hashtbl.create 256;
      }
    in
    let shared = make_buffer Shared_space (Array.make (max 1 shared_words) 0) in
    let waiting = ref [] in
    let live = ref block in
    let run_thread tid =
      let ctx =
        { block_idx = b; thread_idx = tid; block_dim = block; grid_dim = grid;
          access_seq = 0; state }
      in
      Effect.Deep.match_with
        (fun () -> body ctx ~shared)
        ()
        {
          retc = (fun () -> live := !live - 1);
          exnc = raise;
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Barrier ->
                  Some
                    (fun (k : (a, unit) Effect.Deep.continuation) ->
                      waiting := (fun () -> Effect.Deep.continue k ()) :: !waiting)
              | _ -> None);
        }
    in
    for tid = 0 to block - 1 do
      run_thread tid
    done;
    while !waiting <> [] do
      let arrived = List.length !waiting in
      if arrived <> !live then
        failwith
          (Printf.sprintf
             "gpusim: divergent barrier in block %d (%d arrived, %d live)" b arrived !live);
      (* One barrier phase: charge it per warp, reset coalescing window. *)
      let warps = (block + device.Device.warp_size - 1) / device.Device.warp_size in
      counters.Counters.barriers <- counters.Counters.barriers + warps;
      state.phase <- state.phase + 1;
      incr phases;
      let batch = List.rev !waiting in
      waiting := [];
      List.iter (fun resume -> resume ()) batch
    done
  done;
  let add name v = Trace.add frame name (Trace.Int v) in
  add "cells" counters.Counters.cells;
  add "cell_ops" counters.Counters.cell_ops;
  add "shared_accesses" counters.Counters.shared_accesses;
  add "global_reads" counters.Counters.global_reads;
  add "global_writes" counters.Counters.global_writes;
  add "global_transactions" counters.Counters.global_transactions;
  add "barriers" counters.Counters.barriers;
  add "divergent_branches" counters.Counters.divergent_branches;
  add "phases" !phases;
  { counters; elapsed_phases = !phases }
