open Expr
module Trace = Anyseq_trace.Trace

type value = VInt of int | VBool of bool

type residual = { entry : Expr.expr; fns : Expr.fn list }

type error =
  | Unknown_function of string
  | Arity_mismatch of string
  | Type_error of string
  | Division_by_zero
  | Out_of_fuel of string

let error_to_string = function
  | Unknown_function f -> Printf.sprintf "unknown function %s" f
  | Arity_mismatch f -> Printf.sprintf "arity mismatch calling %s" f
  | Type_error what -> Printf.sprintf "type error: %s" what
  | Division_by_zero -> "division by a static zero"
  | Out_of_fuel f -> Printf.sprintf "out of fuel while unfolding %s" f

exception Pe_error of error

(* An abstract value: either fully known at specialization time, or a
   residual expression to be evaluated at run time. *)
type aval = Known of value | Dyn of expr

let expr_of_value = function VInt n -> Int n | VBool b -> Bool b
let expr_of_aval = function Known v -> expr_of_value v | Dyn e -> e

let as_int = function
  | VInt n -> n
  | VBool _ -> raise (Pe_error (Type_error "expected int, got bool"))

let as_bool = function
  | VBool b -> b
  | VInt _ -> raise (Pe_error (Type_error "expected bool, got int"))

type ctx = {
  program : Expr.program;
  static_arrays : (string * int array) list;
  fuel0 : int;  (** initial fuel, for provenance reporting *)
  mutable fuel : int;
  mutable fresh : int;
  (* Provenance counters surfaced as span attributes: every call unfolding
     and every PE-time evaluation step that removed a node from the
     residual (constant-folded binop/neg, statically selected branch,
     folded static-array read, algebraic simplification). *)
  mutable unfolds : int;
  mutable folds : int;
  (* Memoized specializations: (fn name, static arg assignment) ->
     specialized residual name. *)
  specializations : (string * (string * value) list, string) Hashtbl.t;
  mutable residual_fns : Expr.fn list;
}

let fresh_name ctx base =
  ctx.fresh <- ctx.fresh + 1;
  Printf.sprintf "%s%%%d" base ctx.fresh

let mangle name static_args =
  match static_args with
  | [] -> name ^ "%d" (* distinguish the all-dynamic variant from the source *)
  | _ ->
      let part (p, v) =
        match v with VInt n -> Printf.sprintf "%s=%d" p n | VBool b -> Printf.sprintf "%s=%b" p b
      in
      name ^ "%" ^ String.concat "," (List.map part static_args)

let fold_binop op a b =
  match op with
  | Add -> VInt (as_int a + as_int b)
  | Sub -> VInt (as_int a - as_int b)
  | Mul -> VInt (as_int a * as_int b)
  | Div ->
      let d = as_int b in
      if d = 0 then raise (Pe_error Division_by_zero) else VInt (as_int a / d)
  | Eq -> VBool (a = b)
  | Ne -> VBool (a <> b)
  | Lt -> VBool (as_int a < as_int b)
  | Le -> VBool (as_int a <= as_int b)
  | And -> VBool (as_bool a && as_bool b)
  | Or -> VBool (as_bool a || as_bool b)
  | Max -> VInt (max (as_int a) (as_int b))
  | Min -> VInt (min (as_int a) (as_int b))

(* Algebraic simplification of a residual binop with one known operand. *)
let simplify op a b =
  match (op, a, b) with
  | Add, Known (VInt 0), d | Add, d, Known (VInt 0) -> Some d
  | Sub, d, Known (VInt 0) -> Some d
  | Mul, Known (VInt 1), d | Mul, d, Known (VInt 1) -> Some d
  | Mul, Known (VInt 0), _ | Mul, _, Known (VInt 0) -> Some (Known (VInt 0))
  | And, Known (VBool true), d | And, d, Known (VBool true) -> Some d
  | And, Known (VBool false), _ | And, _, Known (VBool false) -> Some (Known (VBool false))
  | Or, Known (VBool false), d | Or, d, Known (VBool false) -> Some d
  | Or, Known (VBool true), _ | Or, _, Known (VBool true) -> Some (Known (VBool true))
  | _ -> None

module Env = Map.Make (String)

let rec pe ctx env e : aval =
  match e with
  | Int n -> Known (VInt n)
  | Bool b -> Known (VBool b)
  | Var v -> ( match Env.find_opt v env with Some a -> a | None -> Dyn (Var v))
  | Let (v, rhs, body) -> (
      match pe ctx env rhs with
      | Known _ as k -> pe ctx (Env.add v k env) body
      | Dyn (Var _ as simple) ->
          (* Binding to a bare variable: inline, no residual let needed. *)
          pe ctx (Env.add v (Dyn simple) env) body
      | Dyn rhs' ->
          let fresh = fresh_name ctx v in
          let body' = pe ctx (Env.add v (Dyn (Var fresh)) env) body in
          Dyn (Let (fresh, rhs', expr_of_aval body')))
  | If (c, t, f) -> (
      match pe ctx env c with
      | Known v ->
          ctx.folds <- ctx.folds + 1;
          if as_bool v then pe ctx env t else pe ctx env f
      | Dyn c' ->
          let t' = pe ctx env t and f' = pe ctx env f in
          Dyn (If (c', expr_of_aval t', expr_of_aval f')))
  | Binop (op, a, b) -> (
      let a' = pe ctx env a and b' = pe ctx env b in
      match (a', b') with
      | Known va, Known vb ->
          ctx.folds <- ctx.folds + 1;
          Known (fold_binop op va vb)
      | _ -> (
          match simplify op a' b' with
          | Some r ->
              ctx.folds <- ctx.folds + 1;
              r
          | None -> Dyn (Binop (op, expr_of_aval a', expr_of_aval b'))))
  | Neg a -> (
      match pe ctx env a with
      | Known v ->
          ctx.folds <- ctx.folds + 1;
          Known (VInt (-as_int v))
      | Dyn e' -> Dyn (Neg e'))
  | Read (arr, idx) -> (
      let idx' = pe ctx env idx in
      match (List.assoc_opt arr ctx.static_arrays, idx') with
      | Some data, Known v ->
          let i = as_int v in
          if i < 0 || i >= Array.length data then
            raise (Pe_error (Type_error (Printf.sprintf "static read %s[%d] out of bounds" arr i)))
          else begin
            ctx.folds <- ctx.folds + 1;
            Known (VInt data.(i))
          end
      | _ -> Dyn (Read (arr, expr_of_aval idx')))
  | Call (fname, args) -> (
      let fn =
        match lookup_fn ctx.program fname with
        | Some fn -> fn
        | None -> raise (Pe_error (Unknown_function fname))
      in
      if List.length fn.params <> List.length args then
        raise (Pe_error (Arity_mismatch fname));
      let avals = List.map (pe ctx env) args in
      let bound = List.combine fn.params avals in
      let statics = List.filter_map (function p, Known v -> Some (p, v) | _ -> None) bound in
      let unfold =
        match fn.filter with
        | Always -> true
        | Never -> false
        | When_static names ->
            List.for_all
              (fun n -> List.exists (fun (p, _) -> p = n) statics)
              names
      in
      if unfold then begin
        if ctx.fuel <= 0 then raise (Pe_error (Out_of_fuel fname));
        ctx.fuel <- ctx.fuel - 1;
        ctx.unfolds <- ctx.unfolds + 1;
        let env' =
          List.fold_left (fun acc (p, a) -> Env.add p a acc) Env.empty bound
        in
        pe ctx env' fn.body
      end
      else begin
        (* Residualize: emit (and memoize) a variant of [fn] specialized to
           the static arguments; only dynamic arguments remain. *)
        let dyn_params = List.filter_map (function p, Dyn _ -> Some p | _ -> None) bound in
        let dyn_args = List.filter_map (function _, Dyn e -> Some e | _ -> None) bound in
        let key = (fname, statics) in
        let rname =
          match Hashtbl.find_opt ctx.specializations key with
          | Some rname -> rname
          | None ->
              let rname = mangle fname statics in
              Hashtbl.add ctx.specializations key rname;
              let env' =
                List.fold_left
                  (fun acc (p, a) ->
                    match a with
                    | Known v -> Env.add p (Known v) acc
                    | Dyn _ -> Env.add p (Dyn (Var p)) acc)
                  Env.empty bound
              in
              let body' = pe ctx env' fn.body in
              ctx.residual_fns <-
                { name = rname; params = dyn_params; filter = Never; body = expr_of_aval body' }
                :: ctx.residual_fns;
              rname
        in
        Dyn (Call (rname, dyn_args))
      end)

(* Residual functions that ended up never being called from the entry (e.g.
   their call sites folded away after memoization) are pruned. *)
let reachable entry fns =
  let tbl = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace tbl f.name f) fns;
  let seen = Hashtbl.create 16 in
  let rec walk e =
    match e with
    | Int _ | Bool _ | Var _ -> ()
    | Let (_, a, b) -> walk a; walk b
    | If (a, b, c) -> walk a; walk b; walk c
    | Binop (_, a, b) -> walk a; walk b
    | Neg a -> walk a
    | Read (_, i) -> walk i
    | Call (f, args) ->
        List.iter walk args;
        if not (Hashtbl.mem seen f) then begin
          Hashtbl.add seen f ();
          match Hashtbl.find_opt tbl f with Some fn -> walk fn.body | None -> ()
        end
  in
  walk entry;
  List.filter (fun f -> Hashtbl.mem seen f.name) fns

let make_ctx ?(fuel = 100_000) ?(static_arrays = []) ~program () =
  {
    program;
    static_arrays;
    fuel0 = fuel;
    fuel;
    fresh = 0;
    unfolds = 0;
    folds = 0;
    specializations = Hashtbl.create 16;
    residual_fns = [];
  }

let residual_nodes r =
  size r.entry + List.fold_left (fun acc (f : fn) -> acc + size f.body) 0 r.fns

(* Provenance of one specialization, attached to the enclosing span: how
   much fuel the unfolding consumed, how many nodes folded away, and how
   big the residual came out — the quantities the paper's specialization
   claims are about. *)
let finish_span ctx frame outcome =
  (match frame with
  | None -> ()
  | Some _ ->
      Trace.add frame "fuel_limit" (Trace.Int ctx.fuel0);
      Trace.add frame "fuel_used" (Trace.Int (ctx.fuel0 - ctx.fuel));
      Trace.add frame "unfolds" (Trace.Int ctx.unfolds);
      Trace.add frame "folds" (Trace.Int ctx.folds);
      Trace.add frame "specializations" (Trace.Int (Hashtbl.length ctx.specializations));
      (match outcome with
      | Ok r ->
          Trace.add frame "residual_fns" (Trace.Int (List.length r.fns));
          Trace.add frame "residual_nodes" (Trace.Int (residual_nodes r));
          Trace.add frame "status" (Trace.Str "ok")
      | Error err -> Trace.add frame "status" (Trace.Str (error_to_string err))));
  Trace.finish frame;
  outcome

let run ?fuel ?static_arrays ~program ~env e =
  let ctx = make_ctx ?fuel ?static_arrays ~program () in
  let frame = Trace.start "pe.run" in
  let env =
    List.fold_left (fun acc (v, value) -> Env.add v (Known value) acc) Env.empty env
  in
  finish_span ctx frame
    (match pe ctx env e with
    | aval ->
        let entry = expr_of_aval aval in
        Ok { entry; fns = reachable entry (List.rev ctx.residual_fns) }
    | exception Pe_error err -> Error err)

let specialize_fn ?fuel ?static_arrays ~program ~name ~static_args () =
  match lookup_fn program name with
  | None -> Error (Unknown_function name)
  | Some fn ->
      (* Force unfolding of the entry call by evaluating the body directly
         with the mixed environment, rather than going through the filter. *)
      let ctx = make_ctx ?fuel ?static_arrays ~program () in
      let frame = Trace.start "pe.specialize" ~attrs:[ ("fn", Trace.Str name) ] in
      let env =
        List.fold_left
          (fun acc (v, value) -> Env.add v (Known value) acc)
          Env.empty static_args
      in
      finish_span ctx frame
        (match pe ctx env fn.body with
        | aval ->
            let entry = expr_of_aval aval in
            Ok { entry; fns = reachable entry (List.rev ctx.residual_fns) }
        | exception Pe_error err -> Error err)
