(* The network subsystem: wire protocol in isolation (round-trips,
   truncation, fuzz), the continuous batcher, and a loopback server whose
   answers must be byte-identical to direct Anyseq.align calls. *)

module Wire = Anyseq.Wire
module Addr = Anyseq.Addr
module Client = Anyseq.Client
module Server = Anyseq.Server
module Batcher = Anyseq.Batcher
module Rng = Anyseq_util.Rng

(* ------------------------------------------------------------------ *)
(* Wire protocol                                                       *)
(* ------------------------------------------------------------------ *)

let configs_under_test =
  [
    Wire.default_config;
    {
      Wire.scheme =
        Wire.Simple { alphabet = `Dna4; match_ = 2; mismatch = -1; gap_open = 0; gap_extend = 1 };
      mode = Anyseq.Types.Global;
      traceback = false;
      backend = Anyseq.Config.Scalar;
    };
    {
      Wire.scheme =
        Wire.Simple { alphabet = `Dna5; match_ = 3; mismatch = -2; gap_open = 5; gap_extend = 2 };
      mode = Anyseq.Types.Local;
      traceback = true;
      backend = Anyseq.Config.Simd;
    };
    {
      Wire.scheme = Wire.Named "dna5(+2/-1)/affine(2,1)";
      mode = Anyseq.Types.Semiglobal;
      traceback = false;
      backend = Anyseq.Config.Wavefront;
    };
  ]

let requests_under_test =
  List.mapi
    (fun i config ->
      {
        Wire.id = Int64.of_int (1000 + i);
        config;
        timeout_s = (if i mod 2 = 0 then Some (0.5 +. float_of_int i) else None);
        query = String.concat "" (List.init (i + 1) (fun _ -> "ACGT"));
        subject = "TTACGTTT";
        trace =
          (if i mod 2 = 0 then
             Some { Wire.trace_id = Int64.of_int (77 + i); parent_span = 3L }
           else None);
      })
    configs_under_test

let replies_under_test =
  [
    {
      Wire.rid = 7L;
      payload = Wire.Result { score = 42; query_end = 10; subject_end = 9; cigar = None };
      queue_ns = 1234L;
      service_ns = 56789L;
      batch_jobs = 17;
    };
    {
      Wire.rid = Int64.max_int;
      payload =
        Wire.Result { score = -3; query_end = 0; subject_end = 0; cigar = Some "4=1X12D" };
      queue_ns = 0L;
      service_ns = 0L;
      batch_jobs = 1;
    };
  ]
  @ List.mapi
      (fun i code ->
        {
          Wire.rid = Int64.of_int i;
          payload = Wire.Failure { code; message = "m" ^ string_of_int i };
          queue_ns = 5L;
          service_ns = 6L;
          batch_jobs = 0;
        })
      [
        Wire.Bad_sequence; Wire.Overflow_bound; Wire.Rejected; Wire.Timeout; Wire.Bad_request;
        Wire.Draining; Wire.Internal; Wire.Cutoff;
      ]

let decode_ok what s =
  match Wire.decode_frame s with
  | Ok (frame, consumed) ->
      Alcotest.(check int) (what ^ ": consumed whole frame") (String.length s) consumed;
      frame
  | Error `Incomplete -> Alcotest.failf "%s: unexpected Incomplete" what
  | Error (`Malformed msg) -> Alcotest.failf "%s: unexpected Malformed %s" what msg

let test_wire_request_roundtrip () =
  List.iter
    (fun (req : Wire.request) ->
      match decode_ok "request" (Wire.encode_request req) with
      | Wire.Request r ->
          Alcotest.(check int64) "id" req.Wire.id r.Wire.id;
          Alcotest.(check string) "query" req.Wire.query r.Wire.query;
          Alcotest.(check string) "subject" req.Wire.subject r.Wire.subject;
          Alcotest.(check (option (float 1e-9))) "timeout" req.Wire.timeout_s r.Wire.timeout_s;
          Alcotest.(check string) "config survives"
            (Wire.config_key req.Wire.config)
            (Wire.config_key r.Wire.config)
      | Wire.Reply _ -> Alcotest.fail "request decoded as reply")
    requests_under_test

let test_wire_reply_roundtrip () =
  List.iter
    (fun (rep : Wire.reply) ->
      match decode_ok "reply" (Wire.encode_reply rep) with
      | Wire.Reply r ->
          Alcotest.(check int64) "rid" rep.Wire.rid r.Wire.rid;
          Alcotest.(check int64) "queue_ns" rep.Wire.queue_ns r.Wire.queue_ns;
          Alcotest.(check int64) "service_ns" rep.Wire.service_ns r.Wire.service_ns;
          Alcotest.(check int) "batch_jobs" rep.Wire.batch_jobs r.Wire.batch_jobs;
          (match (rep.Wire.payload, r.Wire.payload) with
          | Wire.Result a, Wire.Result b ->
              Alcotest.(check int) "score" a.score b.score;
              Alcotest.(check int) "query_end" a.query_end b.query_end;
              Alcotest.(check int) "subject_end" a.subject_end b.subject_end;
              Alcotest.(check (option string)) "cigar" a.cigar b.cigar
          | Wire.Failure a, Wire.Failure b ->
              Alcotest.(check bool) "code" true (a.code = b.code);
              Alcotest.(check string) "message" a.message b.message
          | _ -> Alcotest.fail "payload kind flipped")
      | Wire.Request _ -> Alcotest.fail "reply decoded as request")
    replies_under_test

let test_wire_truncated () =
  let frame = Wire.encode_request (List.hd requests_under_test) in
  for n = 0 to String.length frame - 1 do
    match Wire.decode_frame (String.sub frame 0 n) with
    | Error `Incomplete -> ()
    | Ok _ -> Alcotest.failf "prefix of %d bytes decoded as a whole frame" n
    | Error (`Malformed msg) -> Alcotest.failf "prefix of %d bytes malformed (%s)" n msg
  done;
  (* A frame followed by the start of the next consumes only the first. *)
  match Wire.decode_frame (frame ^ String.sub frame 0 5) with
  | Ok (_, consumed) -> Alcotest.(check int) "consumed first frame" (String.length frame) consumed
  | Error _ -> Alcotest.fail "frame + partial tail should decode the head"

let expect_malformed what s =
  match Wire.decode_frame s with
  | Error (`Malformed _) -> ()
  | Ok _ -> Alcotest.failf "%s: decoded" what
  | Error `Incomplete -> Alcotest.failf "%s: Incomplete" what

let test_wire_malformed () =
  let frame = Bytes.of_string (Wire.encode_request (List.hd requests_under_test)) in
  let flip pos v =
    let b = Bytes.copy frame in
    Bytes.set b pos v;
    Bytes.to_string b
  in
  expect_malformed "bad magic" (flip 0 '\x00');
  expect_malformed "bad version" (flip 2 '\x09');
  expect_malformed "bad kind" (flip 3 '\x07');
  (* An announced length beyond max_frame is rejected at the header. *)
  let oversized = Bytes.copy frame in
  Bytes.set_int32_be oversized 4 (Int32.of_int (Wire.max_frame + 1));
  expect_malformed "oversized length" (Bytes.to_string oversized)

(* Mutation fuzz: decoding must never raise, whatever the bytes. *)
let test_wire_fuzz () =
  let rng = Rng.create ~seed:99 in
  let frames =
    Array.of_list
      (List.map Wire.encode_request requests_under_test
      @ List.map Wire.encode_reply replies_under_test)
  in
  for _ = 1 to 2000 do
    let f = frames.(Rng.int rng (Array.length frames)) in
    let b = Bytes.of_string f in
    let flips = 1 + Rng.int rng 4 in
    for _ = 1 to flips do
      Bytes.set b (Rng.int rng (Bytes.length b)) (Char.chr (Rng.int rng 256))
    done;
    match Wire.decode_frame (Bytes.to_string b) with
    | Ok _ | Error `Incomplete | Error (`Malformed _) -> ()
  done;
  (* and pure noise *)
  for _ = 1 to 500 do
    let len = Rng.int rng 64 in
    let s = String.init len (fun _ -> Char.chr (Rng.int rng 256)) in
    match Wire.decode_frame s with
    | Ok _ | Error `Incomplete | Error (`Malformed _) -> ()
  done

let test_wire_resolve () =
  List.iter
    (fun (c : Wire.config) ->
      match Wire.resolve_config c with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "resolve failed: %s" msg)
    configs_under_test;
  (match Wire.resolve_config { Wire.default_config with scheme = Wire.Named "nope" } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown named scheme resolved");
  (* config_key separates distinct configs and is stable for equal ones *)
  let keys = List.map Wire.config_key configs_under_test in
  Alcotest.(check int) "distinct keys" (List.length keys)
    (List.length (List.sort_uniq compare keys))

(* ------------------------------------------------------------------ *)
(* Batcher                                                             *)
(* ------------------------------------------------------------------ *)

let test_batcher_max_batch () =
  (* deadline far away: only queue pressure can close the batch *)
  let b = Batcher.create ~max_batch:4 ~max_wait_us:10_000_000 () in
  for i = 1 to 9 do
    Alcotest.(check bool) "push" true (Batcher.push b i)
  done;
  Alcotest.(check (option (list int))) "first four, arrival order" (Some [ 1; 2; 3; 4 ])
    (Batcher.next_batch b);
  Alcotest.(check (option (list int))) "next four" (Some [ 5; 6; 7; 8 ]) (Batcher.next_batch b)

let test_batcher_max_wait () =
  (* zero window: a lone item leaves immediately, no batch-mates needed *)
  let b = Batcher.create ~max_batch:64 ~max_wait_us:0 () in
  ignore (Batcher.push b 1);
  Alcotest.(check (option (list int))) "lone item" (Some [ 1 ]) (Batcher.next_batch b)

let test_batcher_wait_window_groups () =
  (* items pushed within the window ride in one batch *)
  let b = Batcher.create ~max_batch:64 ~max_wait_us:50_000 () in
  let pusher =
    Thread.create
      (fun () ->
        for i = 1 to 5 do
          ignore (Batcher.push b i);
          Thread.delay 0.002
        done)
      ()
  in
  let batch = Batcher.next_batch b in
  Thread.join pusher;
  match batch with
  | None -> Alcotest.fail "no batch"
  | Some items ->
      Alcotest.(check bool)
        (Printf.sprintf "several grouped (got %d)" (List.length items))
        true
        (List.length items > 1)

let test_batcher_backpressure () =
  let b = Batcher.create ~max_pending:2 ~max_wait_us:0 () in
  Alcotest.(check bool) "1 fits" true (Batcher.push b 1);
  Alcotest.(check bool) "2 fits" true (Batcher.push b 2);
  Alcotest.(check bool) "3 rejected" false (Batcher.push b 3);
  Alcotest.(check int) "depth" 2 (Batcher.depth b)

let test_batcher_close_drains () =
  let b = Batcher.create ~max_batch:2 ~max_wait_us:0 () in
  List.iter (fun i -> ignore (Batcher.push b i)) [ 1; 2; 3 ];
  Batcher.close b;
  Alcotest.(check bool) "push after close" false (Batcher.push b 9);
  Alcotest.(check (option (list int))) "flush 1" (Some [ 1; 2 ]) (Batcher.next_batch b);
  Alcotest.(check (option (list int))) "flush 2" (Some [ 3 ]) (Batcher.next_batch b);
  Alcotest.(check (option (list int))) "then None" None (Batcher.next_batch b);
  Alcotest.(check (option (list int))) "stays None" None (Batcher.next_batch b)

let test_batcher_wakes_blocked_consumer () =
  let b = Batcher.create ~max_wait_us:0 () in
  let result = ref (Some []) in
  let consumer = Thread.create (fun () -> result := Batcher.next_batch b) () in
  Thread.delay 0.02;
  ignore (Batcher.push b 42);
  Thread.join consumer;
  Alcotest.(check (option (list int))) "blocked consumer woken" (Some [ 42 ]) !result;
  (* close wakes a consumer blocked on an empty queue *)
  let consumer = Thread.create (fun () -> result := Batcher.next_batch b) () in
  Thread.delay 0.02;
  Batcher.close b;
  Thread.join consumer;
  Alcotest.(check (option (list int))) "close wakes consumer" None !result

(* ------------------------------------------------------------------ *)
(* Loopback integration                                                *)
(* ------------------------------------------------------------------ *)

let fresh_socket_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "anyseq-test-%d-%d.sock" (Unix.getpid ()) !n)

let with_server ?(cfg_update = fun c -> c) f =
  let path = fresh_socket_path () in
  let cfg = cfg_update (Server.default_config ~addrs:[ Addr.Unix_socket path ] ()) in
  match Server.start cfg with
  | Error msg -> Alcotest.failf "server start: %s" msg
  | Ok srv ->
      Fun.protect
        ~finally:(fun () ->
          Server.stop srv;
          if Sys.file_exists path then Sys.remove path)
        (fun () -> f srv (Addr.Unix_socket path))

let random_dna_pairs ~seed ~count ~max_len =
  let rng = Rng.create ~seed in
  Array.init count (fun _ ->
      let len rng = 1 + Rng.int rng max_len in
      let dna rng n = String.init n (fun _ -> "ACGT".[Rng.int rng 4]) in
      (dna rng (len rng), dna rng (len rng)))

(* Every score (and CIGAR) served over the socket must equal the direct
   in-process Anyseq.align answer for the same configuration. *)
let test_loopback_matches_direct () =
  with_server @@ fun _srv addr ->
  let pairs = random_dna_pairs ~seed:5 ~count:24 ~max_len:80 in
  List.iteri
    (fun ci config ->
      let rconfig =
        match Wire.resolve_config config with
        | Ok c -> c
        | Error msg -> Alcotest.failf "resolve: %s" msg
      in
      let conn =
        match Client.connect addr with
        | Ok c -> c
        | Error msg -> Alcotest.failf "connect: %s" msg
      in
      Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
      match Client.align_many conn ~window:8 ~config pairs with
      | Error msg -> Alcotest.failf "config %d: connection failed: %s" ci msg
      | Ok results ->
          Array.iteri
            (fun i r ->
              let query, subject = pairs.(i) in
              let direct = Anyseq.align ~config:rconfig ~query ~subject in
              match (r, direct) with
              | Ok remote, Ok local ->
                  Alcotest.(check int)
                    (Printf.sprintf "config %d pair %d score" ci i)
                    local.Anyseq.score remote.Client.score;
                  let local_cigar =
                    Option.map
                      (fun a -> Anyseq.Cigar.to_string a.Anyseq.Alignment.cigar)
                      local.Anyseq.alignment
                  in
                  Alcotest.(check (option string))
                    (Printf.sprintf "config %d pair %d cigar" ci i)
                    local_cigar remote.Client.cigar
              | Error e, Ok _ ->
                  Alcotest.failf "config %d pair %d: remote failed: %s" ci i
                    (Client.error_to_string e)
              | Ok _, Error e ->
                  Alcotest.failf "config %d pair %d: only direct failed: %s" ci i
                    (Anyseq.Error.to_string e)
              | Error _, Error _ -> ())
            results)
    configs_under_test

(* A malformed frame (or a client that vanishes) costs that connection;
   the server keeps answering everyone else. *)
let test_loopback_malformed_kills_connection_only () =
  with_server @@ fun srv addr ->
  let fd = match Addr.connect addr with Ok fd -> fd | Error m -> Alcotest.failf "%s" m in
  let garbage = "this is not a frame at all.............." in
  let _ = Unix.write_substring fd garbage 0 (String.length garbage) in
  (* server closes this connection: read sees EOF *)
  let buf = Bytes.create 16 in
  let n = try Unix.read fd buf 0 16 with Unix.Unix_error _ -> 0 in
  Alcotest.(check int) "connection closed on garbage" 0 n;
  Unix.close fd;
  (* an abruptly killed client mid-stream *)
  (let fd2 = match Addr.connect addr with Ok fd -> fd | Error m -> Alcotest.failf "%s" m in
   let frame = Wire.encode_request (List.hd requests_under_test) in
   let _ = Unix.write_substring fd2 frame 0 (String.length frame / 2) in
   Unix.close fd2);
  (* ...and the server still serves a well-behaved client *)
  let conn = match Client.connect addr with Ok c -> c | Error m -> Alcotest.failf "%s" m in
  Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
  (match Client.align conn ~query:"ACGT" ~subject:"ACGT" () with
  | Ok r -> Alcotest.(check int) "still serving" 8 r.Client.score
  | Error e -> Alcotest.failf "server died with the bad client: %s" (Client.error_to_string e));
  Alcotest.(check bool) "server not stopped" false (Server.is_stopped srv)

let test_loopback_timeout_and_errors () =
  with_server @@ fun _srv addr ->
  let conn = match Client.connect addr with Ok c -> c | Error m -> Alcotest.failf "%s" m in
  Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
  (* an already-expired deadline must come back as a Timeout error *)
  (match Client.align conn ~timeout_s:1e-9 ~query:"ACGT" ~subject:"ACGT" () with
  | Error (Client.Remote (Wire.Timeout, _)) -> ()
  | Ok _ -> Alcotest.fail "expired deadline succeeded"
  | Error e -> Alcotest.failf "wrong error: %s" (Client.error_to_string e));
  (* unknown named scheme: Bad_request, connection stays usable *)
  (match
     Client.align conn
       ~config:{ Wire.default_config with scheme = Wire.Named "no-such" }
       ~query:"ACGT" ~subject:"ACGT" ()
   with
  | Error (Client.Remote (Wire.Bad_request, _)) -> ()
  | Ok _ -> Alcotest.fail "unknown scheme succeeded"
  | Error e -> Alcotest.failf "wrong error: %s" (Client.error_to_string e));
  match Client.align conn ~query:"ACGT" ~subject:"ACGT" () with
  | Ok r -> Alcotest.(check int) "usable after errors" 8 r.Client.score
  | Error e -> Alcotest.failf "connection lost: %s" (Client.error_to_string e)

(* Graceful drain: everything accepted before the stop is answered. *)
let test_loopback_drain () =
  let path = fresh_socket_path () in
  let cfg = Server.default_config ~addrs:[ Addr.Unix_socket path ] () in
  let srv = match Server.start cfg with Ok s -> s | Error m -> Alcotest.failf "%s" m in
  let addr = Addr.Unix_socket path in
  let pairs = random_dna_pairs ~seed:8 ~count:128 ~max_len:60 in
  let conn = match Client.connect addr with Ok c -> c | Error m -> Alcotest.failf "%s" m in
  let results = Client.align_many conn ~window:16 pairs in
  (match results with
  | Error msg -> Alcotest.failf "load failed: %s" msg
  | Ok rs ->
      Array.iteri
        (fun i r ->
          match r with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "pair %d failed: %s" i (Client.error_to_string e))
        rs);
  (* request the stop the way a signal handler would, then wait out the drain *)
  Server.request_stop srv;
  Server.wait srv;
  Alcotest.(check bool) "stopped" true (Server.is_stopped srv);
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists path);
  Client.close conn;
  (match Client.connect addr with
  | Ok c ->
      Client.close c;
      Alcotest.fail "connect succeeded after drain"
  | Error _ -> ());
  (* stop is idempotent *)
  Server.stop srv

(* Stop while a pipelined load is in flight: every request the server
   accepted is answered (result or an orderly Draining rejection); the
   connection may also break once the drain shuts the read side — but the
   server itself must come down cleanly. *)
let test_loopback_drain_under_load () =
  let path = fresh_socket_path () in
  let cfg = Server.default_config ~addrs:[ Addr.Unix_socket path ] () in
  let srv = match Server.start cfg with Ok s -> s | Error m -> Alcotest.failf "%s" m in
  let addr = Addr.Unix_socket path in
  let pairs = random_dna_pairs ~seed:9 ~count:512 ~max_len:120 in
  let outcome = ref (Error "not run") in
  let client_thread =
    Thread.create
      (fun () ->
        match Client.connect addr with
        | Error m -> outcome := Error m
        | Ok conn ->
            outcome := Client.align_many conn ~window:32 pairs;
            Client.close conn)
      ()
  in
  Thread.delay 0.02;
  Server.stop srv;
  Thread.join client_thread;
  Alcotest.(check bool) "stopped" true (Server.is_stopped srv);
  match !outcome with
  | Error _ -> () (* connection broken mid-pipeline by the shutdown: acceptable *)
  | Ok rs ->
      Array.iteri
        (fun i r ->
          match r with
          | Ok _ | Error (Client.Remote (Wire.Draining, _)) -> ()
          | Error e ->
              Alcotest.failf "pair %d: unexpected outcome during drain: %s" i
                (Client.error_to_string e))
        rs

(* Same stop-under-load contract with a sharded service behind the
   server: two worker domains plus the submit/await completion pipeline
   must drain just as cleanly — accepted requests answered, no worker or
   completer left hanging, and the shard queues empty at the end. *)
let test_loopback_drain_under_load_sharded () =
  let path = fresh_socket_path () in
  let cfg = Server.default_config ~addrs:[ Addr.Unix_socket path ] ~shards:2 () in
  let srv = match Server.start cfg with Ok s -> s | Error m -> Alcotest.failf "%s" m in
  Alcotest.(check int) "service is sharded" 2
    (Anyseq.Service.shards (Server.service srv));
  let addr = Addr.Unix_socket path in
  let pairs = random_dna_pairs ~seed:23 ~count:512 ~max_len:120 in
  let outcome = ref (Error "not run") in
  let client_thread =
    Thread.create
      (fun () ->
        match Client.connect addr with
        | Error m -> outcome := Error m
        | Ok conn ->
            outcome := Client.align_many conn ~window:32 pairs;
            Client.close conn)
      ()
  in
  Thread.delay 0.02;
  Server.stop srv;
  Thread.join client_thread;
  Alcotest.(check bool) "stopped" true (Server.is_stopped srv);
  Alcotest.(check int) "shard queues drained" 0
    (Anyseq.Service.queue_depth (Server.service srv));
  (match !outcome with
  | Error _ -> () (* connection broken mid-pipeline by the shutdown: acceptable *)
  | Ok rs ->
      Array.iteri
        (fun i r ->
          match r with
          | Ok _ | Error (Client.Remote (Wire.Draining, _)) -> ()
          | Error e ->
              Alcotest.failf "pair %d: unexpected outcome during drain: %s" i
                (Client.error_to_string e))
        rs);
  let m = Server.metrics srv in
  let get name = Option.value ~default:0 (Anyseq.Metrics.find m name) in
  Alcotest.(check int) "accepted = replied" (get "server/requests_received")
    (get "server/requests_replied")

(* ------------------------------------------------------------------ *)
(* Observability: trace context, flight recorder, admin endpoint       *)
(* ------------------------------------------------------------------ *)

module Flight = Anyseq.Flight
module Admin = Anyseq.Admin
module Jsonv = Anyseq.Jsonv
module Trace = Anyseq.Trace
module Service = Anyseq.Service

(* v2 frames carry the trace context through encode/decode intact. *)
let test_wire_trace_roundtrip () =
  List.iter
    (fun (req : Wire.request) ->
      match decode_ok "trace roundtrip" (Wire.encode_request req) with
      | Wire.Request r ->
          Alcotest.(check bool)
            "trace survives" true
            (req.Wire.trace = r.Wire.trace)
      | Wire.Reply _ -> Alcotest.fail "request decoded as reply")
    requests_under_test

(* Version negotiation: a v1 encoder (old client) produces frames a v2
   decoder still parses — minus the trace context it cannot carry; a
   version beyond [protocol_version] is rejected at the header. *)
let test_wire_mixed_version () =
  let traced =
    List.find (fun (r : Wire.request) -> r.Wire.trace <> None) requests_under_test
  in
  let v1_frame = Wire.encode_request ~version:1 traced in
  (match decode_ok "v1 frame" v1_frame with
  | Wire.Request r ->
      Alcotest.(check int64) "id survives v1" traced.Wire.id r.Wire.id;
      Alcotest.(check string) "query survives v1" traced.Wire.query r.Wire.query;
      Alcotest.(check bool) "v1 drops trace" true (r.Wire.trace = None)
  | Wire.Reply _ -> Alcotest.fail "request decoded as reply");
  (match Wire.decode_header (String.sub v1_frame 0 8) with
  | Ok (version, kind, _) ->
      Alcotest.(check int) "v1 header version" 1 version;
      Alcotest.(check int) "v1 header kind" Wire.kind_request kind
  | Error msg -> Alcotest.failf "v1 header rejected: %s" msg);
  (* encoder refuses versions outside the negotiated range *)
  (match Wire.encode_request ~version:(Wire.protocol_version + 1) traced with
  | _ -> Alcotest.fail "future version encoded"
  | exception Invalid_argument _ -> ());
  (* decoder refuses a frame stamped beyond protocol_version *)
  let future = Bytes.of_string (Wire.encode_request traced) in
  Bytes.set future 2 (Char.chr (Wire.protocol_version + 1));
  match Wire.decode_frame (Bytes.to_string future) with
  | Error (`Malformed _) -> ()
  | Ok _ -> Alcotest.fail "future-version frame decoded"
  | Error `Incomplete -> Alcotest.fail "future-version frame: Incomplete"

(* The flight ring overwrites the oldest record and keeps a faithful
   total; its JSON dump is parsable and complete. *)
let test_flight_wraparound () =
  let ring = Flight.create ~capacity:8 () in
  let mk i =
    {
      Flight.fr_rid = Int64.of_int i;
      fr_cid = 1;
      fr_config = Printf.sprintf "cfg-%d" i;
      fr_trace = (if i mod 2 = 0 then Some (Int64.of_int (1000 + i)) else None);
      fr_accept_ns = Int64.of_int (10 * i);
      fr_decode_ns = Int64.of_int ((10 * i) + 1);
      fr_enqueue_ns = Int64.of_int ((10 * i) + 2);
      fr_submit_ns = Int64.of_int ((10 * i) + 3);
      fr_done_ns = Int64.of_int ((10 * i) + 4);
      fr_reply_ns = Int64.of_int ((10 * i) + 5);
      fr_batch_jobs = 4;
      fr_outcome = "ok";
    }
  in
  for i = 0 to 19 do
    Flight.record ring (mk i)
  done;
  Alcotest.(check int) "recorded counts everything" 20 (Flight.recorded ring);
  let snap = Flight.snapshot ring in
  Alcotest.(check int) "ring keeps capacity records" 8 (List.length snap);
  Alcotest.(check int64) "oldest kept is #12" 12L (List.hd snap).Flight.fr_rid;
  Alcotest.(check int64) "newest kept is #19" 19L
    (List.nth snap 7).Flight.fr_rid;
  (match Jsonv.parse (Flight.to_json snap) with
  | Error msg -> Alcotest.failf "flight JSON unparsable: %s" msg
  | Ok doc -> (
      match Option.bind (Jsonv.member "records" doc) Jsonv.to_list with
      | Some records ->
          Alcotest.(check int) "JSON records" 8 (List.length records);
          let first = List.hd records in
          Alcotest.(check (float 0.0)) "JSON rid" 12.0 (Jsonv.num "rid" first);
          Alcotest.(check string) "JSON trace id (16 hex)" "00000000000003f4"
            (Jsonv.str "trace_id" first)
      | None -> Alcotest.fail "flight JSON has no records array"));
  match Flight.create ~capacity:0 () with
  | _ -> Alcotest.fail "zero-capacity ring created"
  | exception Invalid_argument _ -> ()

(* Tracing across the wire: a traced client aligning against an in-process
   server yields client.request and server.request spans sharing one
   trace-id attribute — the stitched cross-process view. *)
let test_trace_propagation_loopback () =
  Trace.enable ();
  Fun.protect ~finally:(fun () -> Trace.disable ())
  @@ fun () ->
  with_server @@ fun _srv addr ->
  let conn = match Client.connect addr with Ok c -> c | Error m -> Alcotest.failf "%s" m in
  (match Client.align conn ~query:"ACGTACGT" ~subject:"ACGT" () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "align: %s" (Client.error_to_string e));
  Client.close conn;
  let spans = Trace.spans () in
  let attr_str name (s : Trace.span) =
    List.find_map
      (function n, Trace.Str v when n = name -> Some v | _ -> None)
      s.Trace.attrs
  in
  let ids_of span_name =
    List.filter_map
      (fun (s : Trace.span) ->
        if s.Trace.name = span_name then attr_str "trace_id" s else None)
      spans
  in
  let client_ids = ids_of "client.request" in
  let server_ids = ids_of "server.request" in
  Alcotest.(check bool) "client span recorded" true (client_ids <> []);
  Alcotest.(check bool) "server span recorded" true (server_ids <> []);
  List.iter
    (fun cid ->
      Alcotest.(check bool)
        (Printf.sprintf "server span carries client trace id %s" cid)
        true (List.mem cid server_ids))
    client_ids;
  (* the id also reached the execution spans inside the service *)
  let exec_ids = ids_of "service.exec" in
  List.iter
    (fun cid ->
      Alcotest.(check bool)
        (Printf.sprintf "service.exec carries trace id %s" cid)
        true (List.mem cid exec_ids))
    client_ids

let contains ~affix s =
  let la = String.length affix and ls = String.length s in
  let rec at i = i + la <= ls && (String.sub s i la = affix || at (i + 1)) in
  at 0

let with_admin_server f =
  let admin =
    match Addr.parse "tcp:127.0.0.1:0" with
    | Ok a -> a
    | Error msg -> Alcotest.failf "admin addr: %s" msg
  in
  with_server
    ~cfg_update:(fun c -> { c with Server.admin = Some admin })
    (fun srv addr ->
      match Server.admin_address srv with
      | None -> Alcotest.fail "admin listener did not come up"
      | Some admin_addr -> f srv addr admin_addr)

let get_ok what admin path =
  match Admin.http_get admin path with
  | Ok (200, body) -> body
  | Ok (status, _) -> Alcotest.failf "%s: HTTP %d" what status
  | Error msg -> Alcotest.failf "%s: %s" what msg

(* /metrics is scrapable during active load, exposes the stage histograms
   with quantile-ready buckets and the per-shard gauge series. *)
let test_admin_metrics_under_load () =
  with_admin_server @@ fun srv addr admin ->
  let pairs = random_dna_pairs ~seed:21 ~count:96 ~max_len:64 in
  let loader =
    Thread.create
      (fun () ->
        let conn =
          match Client.connect addr with Ok c -> c | Error m -> failwith m
        in
        let r = Client.align_many conn ~window:16 pairs in
        Client.close conn;
        match r with Ok _ -> () | Error m -> failwith m)
      ()
  in
  (* scrape repeatedly while the load runs — the exposition must always be
     well-formed, whatever instant it samples *)
  for _ = 1 to 5 do
    let body = get_ok "/metrics" admin "/metrics" in
    Alcotest.(check bool) "has TYPE lines" true (contains ~affix:"# TYPE" body)
  done;
  Thread.join loader;
  let body = get_ok "/metrics" admin "/metrics" in
  let has affix = contains ~affix body in
  List.iter
    (fun stage ->
      Alcotest.(check bool)
        (Printf.sprintf "stage histogram %s exported" stage)
        true
        (has (Printf.sprintf "anyseq_server_stage_%s_us_bucket" stage)))
    [ "decode"; "admit"; "queue"; "execute"; "reply" ];
  Alcotest.(check bool) "stage count series" true (has "anyseq_server_stage_execute_us_count");
  Alcotest.(check bool) "per-shard jobs gauge" true (has "anyseq_runtime_shard_jobs{shard=\"0\"}");
  Alcotest.(check bool) "per-shard queued gauge" true
    (has "anyseq_runtime_shard_queued{shard=\"0\"}");
  (* scrape-time refresh: the labeled series must sum to what shard_stats
     reports — the acceptance check the obs gate also enforces *)
  let stats = Service.shard_stats (Server.service srv) in
  let expected = Array.fold_left (fun a s -> a + s.Service.ss_jobs) 0 stats in
  let m = Server.metrics srv in
  let exported =
    Anyseq.Metrics.fold_labeled m "runtime/shard_jobs" (fun acc _ v -> acc + v) 0
  in
  Alcotest.(check int) "shard gauge total = shard_stats total" expected exported

(* /healthz flips to 503 while the service drains and recovers on reopen;
   /statusz and /debug/flight serve well-formed JSON; unknown paths 404. *)
let test_admin_health_status_flight () =
  with_admin_server @@ fun srv addr admin ->
  let conn = match Client.connect addr with Ok c -> c | Error m -> Alcotest.failf "%s" m in
  (match Client.align conn ~query:"ACGTACGTAA" ~subject:"ACGTAA" () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "align: %s" (Client.error_to_string e));
  Client.close conn;
  ignore (get_ok "/healthz up" admin "/healthz");
  Service.drain (Server.service srv);
  (match Admin.http_get admin "/healthz" with
  | Ok (503, body) ->
      Alcotest.(check string) "drain body" "draining\n" body
  | Ok (status, _) -> Alcotest.failf "/healthz while draining: HTTP %d" status
  | Error msg -> Alcotest.failf "/healthz while draining: %s" msg);
  Service.reopen (Server.service srv);
  ignore (get_ok "/healthz after reopen" admin "/healthz");
  (* /statusz: parsable, consistent shape *)
  let statusz = get_ok "/statusz" admin "/statusz" in
  (match Jsonv.parse statusz with
  | Error msg -> Alcotest.failf "/statusz unparsable: %s" msg
  | Ok doc ->
      let srv_obj = Option.value ~default:Jsonv.Null (Jsonv.member "server" doc) in
      Alcotest.(check (float 0.0)) "statusz protocol version"
        (float_of_int Wire.protocol_version)
        (Jsonv.num "protocol_version" srv_obj);
      let req = Option.value ~default:Jsonv.Null (Jsonv.member "requests" doc) in
      Alcotest.(check bool) "statusz counts the request" true (Jsonv.num "replied" req >= 1.0);
      (match Option.bind (Jsonv.member "shards" doc) Jsonv.to_list with
      | Some l ->
          Alcotest.(check int) "statusz shard entries"
            (Service.shards (Server.service srv))
            (List.length l)
      | None -> Alcotest.fail "statusz has no shards array");
      match Jsonv.member "stages" doc with
      | Some stages ->
          let ex = Option.value ~default:Jsonv.Null (Jsonv.member "execute" stages) in
          Alcotest.(check bool) "statusz execute stage counted" true
            (Jsonv.num "count" ex >= 1.0)
      | None -> Alcotest.fail "statusz has no stages object");
  (* /debug/flight: the served request left a record *)
  let flight = get_ok "/debug/flight" admin "/debug/flight" in
  (match Jsonv.parse flight with
  | Error msg -> Alcotest.failf "/debug/flight unparsable: %s" msg
  | Ok doc -> (
      match Option.bind (Jsonv.member "records" doc) Jsonv.to_list with
      | Some (r :: _) -> Alcotest.(check string) "flight outcome" "ok" (Jsonv.str "outcome" r)
      | Some [] -> Alcotest.fail "flight ring empty after a served request"
      | None -> Alcotest.fail "/debug/flight has no records array"));
  match Admin.http_get admin "/nonsense" with
  | Ok (404, _) -> ()
  | Ok (status, _) -> Alcotest.failf "unknown path: HTTP %d" status
  | Error msg -> Alcotest.failf "unknown path: %s" msg

let () =
  Alcotest.run "server"
    [
      ( "wire",
        [
          Alcotest.test_case "request roundtrip" `Quick test_wire_request_roundtrip;
          Alcotest.test_case "reply roundtrip" `Quick test_wire_reply_roundtrip;
          Alcotest.test_case "truncated frames" `Quick test_wire_truncated;
          Alcotest.test_case "malformed frames" `Quick test_wire_malformed;
          Alcotest.test_case "mutation fuzz" `Quick test_wire_fuzz;
          Alcotest.test_case "config resolution" `Quick test_wire_resolve;
        ] );
      ( "batcher",
        [
          Alcotest.test_case "max batch" `Quick test_batcher_max_batch;
          Alcotest.test_case "max wait zero" `Quick test_batcher_max_wait;
          Alcotest.test_case "window groups" `Quick test_batcher_wait_window_groups;
          Alcotest.test_case "backpressure" `Quick test_batcher_backpressure;
          Alcotest.test_case "close drains" `Quick test_batcher_close_drains;
          Alcotest.test_case "wakes blocked consumer" `Quick test_batcher_wakes_blocked_consumer;
        ] );
      ( "loopback",
        [
          Alcotest.test_case "matches direct align" `Slow test_loopback_matches_direct;
          Alcotest.test_case "malformed kills connection only" `Quick
            test_loopback_malformed_kills_connection_only;
          Alcotest.test_case "timeout and errors" `Quick test_loopback_timeout_and_errors;
          Alcotest.test_case "graceful drain" `Quick test_loopback_drain;
          Alcotest.test_case "drain under load" `Slow test_loopback_drain_under_load;
          Alcotest.test_case "drain under load, sharded" `Slow
            test_loopback_drain_under_load_sharded;
        ] );
      ( "observability",
        [
          Alcotest.test_case "wire trace roundtrip" `Quick test_wire_trace_roundtrip;
          Alcotest.test_case "mixed protocol versions" `Quick test_wire_mixed_version;
          Alcotest.test_case "flight ring wraparound" `Quick test_flight_wraparound;
          Alcotest.test_case "trace propagation over loopback" `Quick
            test_trace_propagation_loopback;
          Alcotest.test_case "metrics scrape under load" `Slow test_admin_metrics_under_load;
          Alcotest.test_case "healthz, statusz, flight routes" `Quick
            test_admin_health_status_flight;
        ] );
    ]
