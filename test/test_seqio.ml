module Fasta = Anyseq_seqio.Fasta
module Fastq = Anyseq_seqio.Fastq
module Genome_gen = Anyseq_seqio.Genome_gen
module Read_sim = Anyseq_seqio.Read_sim
module Alphabet = Anyseq_bio.Alphabet
module Sequence = Anyseq_bio.Sequence
module Rng = Anyseq_util.Rng

(* ------------------------------------------------------------------ *)
(* FASTA                                                               *)
(* ------------------------------------------------------------------ *)

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected parse error: %s" msg

let expect_error what result fragment =
  match result with
  | Ok _ -> Alcotest.failf "%s: expected parse error" what
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%s mentions %s (got %s)" what fragment msg)
        true (Helpers.contains_sub msg fragment)

let test_fasta_basic () =
  let text = ">seq1 first sequence\nACGT\nACGT\n>seq2\nTTTT\n" in
  let records = ok (Fasta.parse_string Alphabet.dna4 text) in
  Alcotest.(check int) "two records" 2 (List.length records);
  let r1 = List.nth records 0 in
  Alcotest.(check string) "id" "seq1" r1.Fasta.id;
  Alcotest.(check string) "description" "first sequence" r1.Fasta.description;
  Alcotest.(check string) "wrapped sequence joined" "ACGTACGT"
    (Sequence.to_string r1.Fasta.sequence);
  Alcotest.(check string) "second" "TTTT"
    (Sequence.to_string (List.nth records 1).Fasta.sequence)

let test_fasta_comments_blanks () =
  let text = ";comment\n\n>s\n\nAC\n;mid comment\nGT\n\n" in
  let records = ok (Fasta.parse_string Alphabet.dna4 text) in
  Alcotest.(check string) "sequence" "ACGT"
    (Sequence.to_string (List.hd records).Fasta.sequence)

let test_fasta_errors () =
  expect_error "data before header" (Fasta.parse_string Alphabet.dna4 "ACGT\n") "before any";
  expect_error "empty record" (Fasta.parse_string Alphabet.dna4 ">a\n>b\nAC\n") "no sequence";
  expect_error "bad char" (Fasta.parse_string Alphabet.dna4 ">a\nACXT\n") "not in alphabet";
  expect_error "empty id" (Fasta.parse_string Alphabet.dna4 "> desc only\nAC\n") "empty id"

(* Files written on Windows (CRLF) and files whose last record lacks a
   trailing newline must parse identically to their clean LF form. *)
let test_fasta_crlf () =
  let lf = ">seq1 first sequence\nACGT\nACGT\n>seq2\nTTTT\n" in
  let crlf = ">seq1 first sequence\r\nACGT\r\nACGT\r\n>seq2\r\nTTTT\r\n" in
  let a = ok (Fasta.parse_string Alphabet.dna4 lf) in
  let b = ok (Fasta.parse_string Alphabet.dna4 crlf) in
  Alcotest.(check int) "same record count" (List.length a) (List.length b);
  List.iter2
    (fun x y ->
      Alcotest.(check string) "id" x.Fasta.id y.Fasta.id;
      Alcotest.(check string) "description" x.Fasta.description y.Fasta.description;
      Alcotest.(check string) "sequence"
        (Sequence.to_string x.Fasta.sequence)
        (Sequence.to_string y.Fasta.sequence))
    a b

let test_fasta_no_final_newline () =
  List.iter
    (fun text ->
      let records = ok (Fasta.parse_string Alphabet.dna4 text) in
      Alcotest.(check int) "two records" 2 (List.length records);
      Alcotest.(check string) "last sequence intact" "TTTT"
        (Sequence.to_string (List.nth records 1).Fasta.sequence))
    [ ">a\nACGT\n>b\nTT\nTT"; ">a\r\nACGT\r\n>b\r\nTT\r\nTT" ]

let test_fasta_roundtrip () =
  let rng = Rng.create ~seed:4 in
  let records =
    List.init 5 (fun i ->
        {
          Fasta.id = Printf.sprintf "record%d" i;
          description = (if i mod 2 = 0 then "with description" else "");
          sequence = Sequence.random rng Alphabet.dna4 ~len:(50 + (i * 37));
        })
  in
  let parsed = ok (Fasta.parse_string Alphabet.dna4 (Fasta.to_string ~width:13 records)) in
  List.iter2
    (fun a b ->
      Alcotest.(check string) "id" a.Fasta.id b.Fasta.id;
      Alcotest.(check bool) "sequence" true (Sequence.equal a.Fasta.sequence b.Fasta.sequence))
    records parsed

let test_fasta_file_io () =
  let path = Filename.temp_file "anyseq_test" ".fa" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let records =
        [ { Fasta.id = "x"; description = "d"; sequence = Sequence.of_string Alphabet.dna4 "ACGTA" } ]
      in
      Fasta.write_file path records;
      let back = ok (Fasta.read_file Alphabet.dna4 path) in
      Alcotest.(check string) "roundtrip" "ACGTA"
        (Sequence.to_string (List.hd back).Fasta.sequence));
  match Fasta.read_file Alphabet.dna4 "/nonexistent/path.fa" with
  | Ok _ -> Alcotest.fail "expected file error"
  | Error _ -> ()

(* The streaming fold must see exactly the records read_file returns, in
   file order, without holding the file in memory. *)
let test_fasta_fold () =
  let path = Filename.temp_file "anyseq_test" ".fa" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let records =
        List.init 32 (fun i ->
            {
              Fasta.id = Printf.sprintf "s%02d" i;
              description = (if i mod 3 = 0 then "desc" else "");
              sequence =
                Sequence.of_string Alphabet.dna4
                  (String.init (5 + (i mod 11)) (fun j -> "ACGT".[(i + j) mod 4]));
            })
      in
      Fasta.write_file path records;
      let folded =
        match
          Fasta.fold Alphabet.dna4 path ~init:[] ~f:(fun acc r -> r :: acc)
        with
        | Ok acc -> List.rev acc
        | Error msg -> Alcotest.failf "fold failed: %s" msg
      in
      let direct = ok (Fasta.read_file Alphabet.dna4 path) in
      Alcotest.(check int) "same count" (List.length direct) (List.length folded);
      List.iter2
        (fun a b ->
          Alcotest.(check string) "id" a.Fasta.id b.Fasta.id;
          Alcotest.(check string) "description" a.Fasta.description b.Fasta.description;
          Alcotest.(check bool) "sequence" true
            (Sequence.equal a.Fasta.sequence b.Fasta.sequence))
        direct folded;
      (* fold over the count only: the accumulator is caller-defined *)
      match Fasta.fold Alphabet.dna4 path ~init:0 ~f:(fun n _ -> n + 1) with
      | Ok n -> Alcotest.(check int) "counting fold" (List.length direct) n
      | Error msg -> Alcotest.failf "counting fold failed: %s" msg)

let test_fasta_fold_errors () =
  (match Fasta.fold Alphabet.dna4 "/nonexistent/path.fa" ~init:() ~f:(fun () _ -> ()) with
  | Ok () -> Alcotest.fail "expected file error"
  | Error _ -> ());
  let path = Filename.temp_file "anyseq_test" ".fa" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc ">good\nACGT\n>bad\nACXT\n";
      close_out oc;
      (* the error surfaces as a Result, after earlier records were seen *)
      let seen = ref [] in
      match Fasta.fold Alphabet.dna4 path ~init:() ~f:(fun () r -> seen := r.Fasta.id :: !seen) with
      | Ok () -> Alcotest.fail "expected parse error"
      | Error msg ->
          Alcotest.(check bool) "mentions alphabet" true
            (Helpers.contains_sub msg "not in alphabet");
          Alcotest.(check (list string)) "good record was streamed first" [ "good" ] !seen)

(* ------------------------------------------------------------------ *)
(* FASTQ                                                               *)
(* ------------------------------------------------------------------ *)

let test_fastq_basic () =
  let text = "@read1 extra\nACGT\n+\nIIII\n@read2\nTT\n+read2\n!~\n" in
  let records = ok (Fastq.parse_string Alphabet.dna4 text) in
  Alcotest.(check int) "two records" 2 (List.length records);
  let r = List.hd records in
  Alcotest.(check string) "id stops at space" "read1" r.Fastq.id;
  Alcotest.(check string) "quality" "IIII" r.Fastq.quality

let test_fastq_errors () =
  expect_error "truncated" (Fastq.parse_string Alphabet.dna4 "@a\nAC\n+\n") "multiple of 4";
  expect_error "missing at" (Fastq.parse_string Alphabet.dna4 "a\nAC\n+\nII\n") "'@'";
  expect_error "missing plus" (Fastq.parse_string Alphabet.dna4 "@a\nAC\nII\nII\n") "'+'";
  expect_error "length mismatch" (Fastq.parse_string Alphabet.dna4 "@a\nACG\n+\nII\n") "length"

let test_fastq_phred () =
  Alcotest.(check int) "! is 0" 0 (Fastq.phred_of_char '!');
  Alcotest.(check char) "40" 'I' (Fastq.char_of_phred 40);
  Alcotest.(check (float 1e-9)) "q10" 0.1 (Fastq.error_probability 10);
  Alcotest.check_raises "range" (Invalid_argument "Fastq.char_of_phred: outside 0..93")
    (fun () -> ignore (Fastq.char_of_phred 94))

let test_fastq_crlf () =
  let lf = "@read1 extra\nACGT\n+\nIIII\n@read2\nTT\n+read2\n!~\n" in
  let crlf = "@read1 extra\r\nACGT\r\n+\r\nIIII\r\n@read2\r\nTT\r\n+read2\r\n!~\r\n" in
  let a = ok (Fastq.parse_string Alphabet.dna4 lf) in
  let b = ok (Fastq.parse_string Alphabet.dna4 crlf) in
  Alcotest.(check int) "same record count" (List.length a) (List.length b);
  List.iter2
    (fun x y ->
      Alcotest.(check string) "id" x.Fastq.id y.Fastq.id;
      Alcotest.(check string) "quality" x.Fastq.quality y.Fastq.quality;
      Alcotest.(check string) "sequence"
        (Sequence.to_string x.Fastq.sequence)
        (Sequence.to_string y.Fastq.sequence))
    a b

let test_fastq_no_final_newline () =
  List.iter
    (fun text ->
      let records = ok (Fastq.parse_string Alphabet.dna4 text) in
      Alcotest.(check int) "one record" 1 (List.length records);
      let r = List.hd records in
      Alcotest.(check string) "sequence" "ACGT" (Sequence.to_string r.Fastq.sequence);
      Alcotest.(check string) "quality intact" "IIII" r.Fastq.quality)
    [ "@r\nACGT\n+\nIIII"; "@r\r\nACGT\r\n+\r\nIIII" ]

let test_fastq_roundtrip () =
  let records =
    [
      { Fastq.id = "r0"; sequence = Sequence.of_string Alphabet.dna4 "ACGT"; quality = "IIII" };
      { Fastq.id = "r1"; sequence = Sequence.of_string Alphabet.dna4 "TT"; quality = "!#" };
    ]
  in
  let parsed = ok (Fastq.parse_string Alphabet.dna4 (Fastq.to_string records)) in
  List.iter2
    (fun a b ->
      Alcotest.(check string) "id" a.Fastq.id b.Fastq.id;
      Alcotest.(check string) "quality" a.Fastq.quality b.Fastq.quality)
    records parsed

(* ------------------------------------------------------------------ *)
(* Genome generation                                                   *)
(* ------------------------------------------------------------------ *)

let test_genome_length_and_alphabet () =
  let rng = Rng.create ~seed:9 in
  let g = Genome_gen.generate rng ~len:5000 () in
  Alcotest.(check int) "length" 5000 (Sequence.length g);
  Alcotest.(check string) "alphabet" "dna4" (Alphabet.name (Sequence.alphabet g))

let gc_fraction g =
  let gc = ref 0 in
  for i = 0 to Sequence.length g - 1 do
    let c = Sequence.get g i in
    if c = 1 || c = 2 then incr gc
  done;
  float_of_int !gc /. float_of_int (Sequence.length g)

let test_genome_gc_content () =
  let rng = Rng.create ~seed:10 in
  let profile = { Genome_gen.default_profile with gc_content = 0.6; repeat_fraction = 0.0 } in
  let g = Genome_gen.generate rng ~profile ~len:40_000 () in
  let gc = gc_fraction g in
  Alcotest.(check bool) (Printf.sprintf "gc near 0.6 (got %.3f)" gc) true
    (Float.abs (gc -. 0.6) < 0.02)

let test_genome_validation () =
  let rng = Rng.create ~seed:1 in
  Alcotest.check_raises "negative length"
    (Invalid_argument "Genome_gen.generate: negative length") (fun () ->
      ignore (Genome_gen.generate rng ~len:(-1) ()));
  Alcotest.check_raises "bad gc" (Invalid_argument "Genome_gen.generate: gc_content must be in (0,1)")
    (fun () ->
      ignore
        (Genome_gen.generate rng
           ~profile:{ Genome_gen.default_profile with gc_content = 1.5 }
           ~len:10 ()))

let test_mutate_divergence () =
  let rng = Rng.create ~seed:11 in
  let g = Genome_gen.generate rng ~len:20_000 () in
  let m =
    Genome_gen.mutate rng
      ~divergence:{ snp_rate = 0.05; indel_rate = 0.0; indel_mean_len = 1.0 }
      g
  in
  Alcotest.(check int) "no indels, same length" (Sequence.length g) (Sequence.length m);
  let diffs = ref 0 in
  for i = 0 to Sequence.length g - 1 do
    if Sequence.get g i <> Sequence.get m i then incr diffs
  done;
  let rate = float_of_int !diffs /. float_of_int (Sequence.length g) in
  Alcotest.(check bool) (Printf.sprintf "snp rate near 0.05 (got %.4f)" rate) true
    (Float.abs (rate -. 0.05) < 0.01)

let test_mutate_identity () =
  let rng = Rng.create ~seed:12 in
  let g = Genome_gen.generate rng ~len:1000 () in
  let m =
    Genome_gen.mutate rng
      ~divergence:{ snp_rate = 0.0; indel_rate = 0.0; indel_mean_len = 1.0 }
      g
  in
  Alcotest.(check bool) "zero divergence copies" true (Sequence.equal g m)

let test_benchmark_pairs () =
  let pairs = Genome_gen.benchmark_pairs ~seed:3 ~scale:0.01 in
  Alcotest.(check int) "three pairs" 3 (List.length pairs);
  List.iter
    (fun p ->
      let n = Sequence.length p.Genome_gen.query in
      let m = Sequence.length p.Genome_gen.subject in
      Alcotest.(check bool) "non-trivial" true (n >= 64);
      Alcotest.(check bool)
        (Printf.sprintf "%s roughly similar lengths (%d vs %d)" p.Genome_gen.name n m)
        true
        (Float.abs (float_of_int (n - m)) /. float_of_int n < 0.1))
    pairs;
  (* determinism *)
  let again = Genome_gen.benchmark_pairs ~seed:3 ~scale:0.01 in
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "deterministic" true
        (Sequence.equal a.Genome_gen.query b.Genome_gen.query))
    pairs again

(* ------------------------------------------------------------------ *)
(* SAM                                                                 *)
(* ------------------------------------------------------------------ *)

module Sam = Anyseq_seqio.Sam
module Cigar = Anyseq_bio.Cigar

let test_sam_header () =
  let h = Sam.header ~references:[ ("chr1", 1000); ("chr2", 500) ] in
  Alcotest.(check bool) "HD line" true (Helpers.contains_sub h "@HD\tVN:1.6");
  Alcotest.(check bool) "SQ line" true (Helpers.contains_sub h "@SQ\tSN:chr2\tLN:500")

let test_sam_record () =
  let seq = Sequence.of_string Alphabet.dna4 "ACGT" in
  let r =
    Sam.mapped ~qname:"read1" ~rname:"chr1" ~pos:9 ~mapq:60 ~cigar:(Cigar.of_string "4=")
      ~seq ~qual:"IIII" ()
  in
  let line = Sam.record_to_string r in
  Alcotest.(check string) "mandatory fields" "read1\t0\tchr1\t10\t60\t4=\t*\t0\t0\tACGT\tIIII" line;
  let rev =
    Sam.mapped ~qname:"r2" ~rname:"chr1" ~pos:0 ~reverse:true ~cigar:(Cigar.of_string "2=")
      ~seq:(Sequence.of_string Alphabet.dna4 "AC") ()
  in
  Alcotest.(check bool) "reverse flag" true (Helpers.contains_sub (Sam.record_to_string rev) "\t16\t")

let test_sam_unmapped () =
  let r = Sam.unmapped ~qname:"lost" ~seq:(Sequence.of_string Alphabet.dna4 "AC") () in
  let line = Sam.record_to_string r in
  Alcotest.(check bool) "flag 4" true (Helpers.contains_sub line "\t4\t*\t0\t");
  Alcotest.(check bool) "star cigar" true (Helpers.contains_sub line "\t*\t*\t0\t0\t")

let test_sam_document () =
  let seq = Sequence.of_string Alphabet.dna4 "ACGT" in
  let records =
    [ Sam.mapped ~qname:"a" ~rname:"ref" ~pos:0 ~cigar:(Cigar.of_string "4=") ~seq () ]
  in
  let doc = Sam.to_string ~references:[ ("ref", 100) ] records in
  let lines = String.split_on_char '\n' (String.trim doc) in
  Alcotest.(check int) "3 lines" 3 (List.length lines)

(* ------------------------------------------------------------------ *)
(* Read simulation                                                     *)
(* ------------------------------------------------------------------ *)

let test_read_sim_shapes () =
  let rng = Rng.create ~seed:21 in
  let reference = Genome_gen.generate rng ~len:10_000 () in
  let reads = Read_sim.simulate rng ~reference ~read_len:150 ~count:200 () in
  Alcotest.(check int) "count" 200 (List.length reads);
  List.iter
    (fun r ->
      Alcotest.(check int) "read length" 150 (Sequence.length r.Read_sim.sequence);
      Alcotest.(check int) "quality length" 150 (String.length r.Read_sim.quality);
      Alcotest.(check bool) "origin in range" true
        (r.Read_sim.origin >= 0 && r.Read_sim.origin < 10_000 - 150))
    reads

let test_read_sim_error_free () =
  let rng = Rng.create ~seed:22 in
  let reference = Genome_gen.generate rng ~len:5_000 () in
  let profile =
    { Read_sim.subst_rate_start = 0.0; subst_rate_end = 0.0; ins_rate = 0.0; del_rate = 0.0 }
  in
  let reads = Read_sim.simulate rng ~profile ~reference ~read_len:100 ~count:50 () in
  List.iter
    (fun r ->
      let window = Sequence.sub reference ~pos:r.Read_sim.origin ~len:100 in
      Alcotest.(check bool) "error-free read equals reference window" true
        (Sequence.equal window r.Read_sim.sequence))
    reads

let test_read_sim_errors_present () =
  let rng = Rng.create ~seed:23 in
  let reference = Genome_gen.generate rng ~len:5_000 () in
  let profile =
    { Read_sim.subst_rate_start = 0.2; subst_rate_end = 0.2; ins_rate = 0.0; del_rate = 0.0 }
  in
  let reads = Read_sim.simulate rng ~profile ~reference ~read_len:100 ~count:50 () in
  let total_diffs =
    List.fold_left
      (fun acc r ->
        let window = Sequence.sub reference ~pos:r.Read_sim.origin ~len:100 in
        let d = ref 0 in
        for i = 0 to 99 do
          if Sequence.get window i <> Sequence.get r.Read_sim.sequence i then incr d
        done;
        acc + !d)
      0 reads
  in
  let rate = float_of_int total_diffs /. 5000.0 in
  Alcotest.(check bool) (Printf.sprintf "snp rate near 0.2 (got %.3f)" rate) true
    (Float.abs (rate -. 0.2) < 0.04)

let test_read_sim_reverse_strand () =
  let rng = Rng.create ~seed:24 in
  let reference = Genome_gen.generate rng ~len:5_000 () in
  let profile =
    { Read_sim.subst_rate_start = 0.0; subst_rate_end = 0.0; ins_rate = 0.0; del_rate = 0.0 }
  in
  let reads =
    Read_sim.simulate rng ~profile ~reverse_fraction:0.5 ~reference ~read_len:80 ~count:200 ()
  in
  let nrev =
    List.length (List.filter (fun r -> r.Read_sim.strand = Read_sim.Reverse) reads)
  in
  Alcotest.(check bool) (Printf.sprintf "both strands present (%d reverse)" nrev) true
    (nrev > 50 && nrev < 150);
  List.iter
    (fun r ->
      let window = Sequence.sub reference ~pos:r.Read_sim.origin ~len:80 in
      let expected =
        match r.Read_sim.strand with
        | Read_sim.Forward -> window
        | Read_sim.Reverse -> Sequence.reverse_complement window
      in
      Alcotest.(check bool) "error-free read matches its strand" true
        (Sequence.equal expected r.Read_sim.sequence))
    reads;
  (* default keeps everything forward *)
  let fwd = Read_sim.simulate rng ~profile ~reference ~read_len:80 ~count:50 () in
  Alcotest.(check bool) "default all forward" true
    (List.for_all (fun r -> r.Read_sim.strand = Read_sim.Forward) fwd)

let test_read_sim_validation () =
  let rng = Rng.create ~seed:2 in
  let reference = Genome_gen.generate rng ~len:100 () in
  Alcotest.check_raises "too short"
    (Invalid_argument "Read_sim.simulate: reference too short for requested read length")
    (fun () -> ignore (Read_sim.simulate rng ~reference ~read_len:100 ~count:1 ()))

let test_read_pairs () =
  let pairs = Read_sim.read_pairs ~seed:7 ~reference_len:20_000 ~read_len:150 ~count:64 in
  Alcotest.(check int) "count" 64 (Array.length pairs);
  Array.iter
    (fun (q, s) ->
      Alcotest.(check int) "read length" 150 (Sequence.length q);
      Alcotest.(check bool) "window larger than read" true (Sequence.length s >= 150))
    pairs;
  let again = Read_sim.read_pairs ~seed:7 ~reference_len:20_000 ~read_len:150 ~count:64 in
  Alcotest.(check bool) "deterministic" true
    (Array.for_all2 (fun (a, _) (b, _) -> Sequence.equal a b) pairs again)

let test_to_fastq () =
  let rng = Rng.create ~seed:8 in
  let reference = Genome_gen.generate rng ~len:1000 () in
  let reads = Read_sim.simulate rng ~reference ~read_len:50 ~count:10 () in
  let fq = Read_sim.to_fastq reads in
  Alcotest.(check int) "record count" 10 (List.length fq);
  let text = Fastq.to_string fq in
  match Fastq.parse_string Alphabet.dna4 text with
  | Ok parsed -> Alcotest.(check int) "parses back" 10 (List.length parsed)
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "seqio"
    [
      ( "fasta",
        [
          Alcotest.test_case "basic" `Quick test_fasta_basic;
          Alcotest.test_case "comments and blanks" `Quick test_fasta_comments_blanks;
          Alcotest.test_case "errors" `Quick test_fasta_errors;
          Alcotest.test_case "crlf" `Quick test_fasta_crlf;
          Alcotest.test_case "no final newline" `Quick test_fasta_no_final_newline;
          Alcotest.test_case "roundtrip" `Quick test_fasta_roundtrip;
          Alcotest.test_case "file io" `Quick test_fasta_file_io;
          Alcotest.test_case "fold" `Quick test_fasta_fold;
          Alcotest.test_case "fold errors" `Quick test_fasta_fold_errors;
        ] );
      ( "fastq",
        [
          Alcotest.test_case "basic" `Quick test_fastq_basic;
          Alcotest.test_case "errors" `Quick test_fastq_errors;
          Alcotest.test_case "crlf" `Quick test_fastq_crlf;
          Alcotest.test_case "no final newline" `Quick test_fastq_no_final_newline;
          Alcotest.test_case "phred" `Quick test_fastq_phred;
          Alcotest.test_case "roundtrip" `Quick test_fastq_roundtrip;
        ] );
      ( "genome_gen",
        [
          Alcotest.test_case "length and alphabet" `Quick test_genome_length_and_alphabet;
          Alcotest.test_case "gc content" `Quick test_genome_gc_content;
          Alcotest.test_case "validation" `Quick test_genome_validation;
          Alcotest.test_case "mutate divergence" `Quick test_mutate_divergence;
          Alcotest.test_case "mutate identity" `Quick test_mutate_identity;
          Alcotest.test_case "benchmark pairs" `Quick test_benchmark_pairs;
        ] );
      ( "sam",
        [
          Alcotest.test_case "header" `Quick test_sam_header;
          Alcotest.test_case "record" `Quick test_sam_record;
          Alcotest.test_case "unmapped" `Quick test_sam_unmapped;
          Alcotest.test_case "document" `Quick test_sam_document;
        ] );
      ( "read_sim",
        [
          Alcotest.test_case "shapes" `Quick test_read_sim_shapes;
          Alcotest.test_case "error-free" `Quick test_read_sim_error_free;
          Alcotest.test_case "errors present" `Quick test_read_sim_errors_present;
          Alcotest.test_case "reverse strand" `Quick test_read_sim_reverse_strand;
          Alcotest.test_case "validation" `Quick test_read_sim_validation;
          Alcotest.test_case "read pairs" `Quick test_read_pairs;
          Alcotest.test_case "to fastq" `Quick test_to_fastq;
        ] );
    ]
