(* server-smoke: an end-to-end check of the network path, run by the
   tier-1 alias `dune build @server-smoke`.

   Starts a real server on a Unix socket, drives single and pipelined
   loads through the client library, and asserts every answer is
   byte-identical to a direct Anyseq.align call — then drains gracefully
   and checks nothing was dropped. Functional assertions only; no timing
   thresholds (CI machines are noisy). *)

module Wire = Anyseq.Wire
module Addr = Anyseq.Addr
module Client = Anyseq.Client
module Server = Anyseq.Server
module Rng = Anyseq_util.Rng

let failures = ref 0

let check what ok =
  if not ok then begin
    incr failures;
    Printf.eprintf "FAIL: %s\n" what
  end

let checkf what fmt = Printf.ksprintf (fun msg -> check (what ^ ": " ^ msg)) fmt

let random_pairs ~seed ~count ~max_len =
  let rng = Rng.create ~seed in
  Array.init count (fun _ ->
      let dna n = String.init n (fun _ -> "ACGTN".[Rng.int rng 5]) in
      (dna (1 + Rng.int rng max_len), dna (1 + Rng.int rng max_len)))

let configs =
  [
    ("score-only auto", Wire.default_config);
    ("traceback", { Wire.default_config with traceback = true });
    ( "local simd",
      {
        Wire.scheme =
          Wire.Simple
            { alphabet = `Dna5; match_ = 2; mismatch = -1; gap_open = 0; gap_extend = 1 };
        mode = Anyseq.Types.Local;
        traceback = false;
        backend = Anyseq.Config.Simd;
      } );
    ( "affine wavefront",
      {
        Wire.default_config with
        scheme = Wire.Named "dna5(+2/-1)/affine(2,1)";
        backend = Anyseq.Config.Wavefront;
      } );
  ]

let () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "anyseq-smoke-%d.sock" (Unix.getpid ()))
  in
  let addr = Addr.Unix_socket path in
  let cfg = Server.default_config ~addrs:[ addr ] () in
  let srv =
    match Server.start cfg with
    | Ok s -> s
    | Error msg ->
        Printf.eprintf "FAIL: server start: %s\n" msg;
        exit 1
  in
  let pairs = random_pairs ~seed:42 ~count:96 ~max_len:100 in
  let total = ref 0 in
  List.iter
    (fun (name, config) ->
      match Wire.resolve_config config with
      | Error msg -> checkf name "resolve_config: %s" msg false
      | Ok rconfig -> (
          match Client.connect addr with
          | Error msg -> checkf name "connect: %s" msg false
          | Ok conn ->
              Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
              (match Client.align_many conn ~window:16 ~config pairs with
              | Error msg -> checkf name "pipeline: %s" msg false
              | Ok results ->
                  Array.iteri
                    (fun i r ->
                      incr total;
                      let query, subject = pairs.(i) in
                      match (r, Anyseq.align ~config:rconfig ~query ~subject) with
                      | Ok remote, Ok local ->
                          checkf name "pair %d: score %d <> direct %d" i
                            remote.Client.score local.Anyseq.score
                            (remote.Client.score = local.Anyseq.score);
                          let local_cigar =
                            Option.map
                              (fun a -> Anyseq.Cigar.to_string a.Anyseq.Alignment.cigar)
                              local.Anyseq.alignment
                          in
                          checkf name "pair %d: cigar mismatch" i
                            (remote.Client.cigar = local_cigar)
                      | Error e, Ok _ ->
                          checkf name "pair %d: remote error %s" i
                            (Client.error_to_string e) false
                      | Ok _, Error e ->
                          checkf name "pair %d: only direct failed: %s" i
                            (Anyseq.Error.to_string e) false
                      | Error _, Error _ -> ())
                    results)))
    configs;
  (* malformed frame: the connection dies, the server does not *)
  (match Addr.connect addr with
  | Error msg -> checkf "garbage" "connect: %s" msg false
  | Ok fd ->
      let _ = Unix.write_substring fd "garbage garbage garbage" 0 23 in
      let n = try Unix.read fd (Bytes.create 8) 0 8 with Unix.Unix_error _ -> 0 in
      check "garbage connection closed" (n = 0);
      Unix.close fd);
  (match Client.connect addr with
  | Error msg -> checkf "post-garbage" "connect: %s" msg false
  | Ok conn ->
      (match Client.align conn ~query:"ACGT" ~subject:"ACGT" () with
      | Ok r -> check "server alive after garbage" (r.Client.score = 8)
      | Error e -> checkf "post-garbage" "align: %s" (Client.error_to_string e) false);
      Client.close conn);
  (* graceful drain *)
  Server.request_stop srv;
  Server.wait srv;
  check "server stopped" (Server.is_stopped srv);
  check "socket unlinked" (not (Sys.file_exists path));
  let m = Server.metrics srv in
  let get name = Option.value ~default:0 (Anyseq.Metrics.find m name) in
  check "every accepted request replied"
    (get "server/requests_received" = get "server/requests_replied");
  if !failures > 0 then begin
    Printf.eprintf "server-smoke: %d failure(s)\n" !failures;
    exit 1
  end;
  Printf.printf "server-smoke OK: %d loopback alignments matched direct execution, %d served\n"
    !total (get "server/requests_replied")
