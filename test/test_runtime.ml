(* Tests of the runtime service layer: specialization cache, batch
   executor, metrics, and the redesigned facade entry points.

   The central property here is the API contract of the redesign:
   [align_batch] over any job array is observably identical to folding
   [align] over it — same scores, same transcripts, same errors — for
   every backend, mode, and gap model. *)

module Rng = Anyseq_util.Rng
module Alphabet = Anyseq_bio.Alphabet
module Sequence = Anyseq_bio.Sequence
module Substitution = Anyseq_bio.Substitution
module Gaps = Anyseq_bio.Gaps
module Cigar = Anyseq_bio.Cigar
module Alignment = Anyseq_bio.Alignment
module Scheme = Anyseq_scoring.Scheme
module T = Anyseq_core.Types
module Dp_linear = Anyseq_core.Dp_linear
module Domain_pool = Anyseq_wavefront.Domain_pool
module Wire = Anyseq_client.Wire
open Anyseq_runtime

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_basics () =
  let m = Metrics.create () in
  let c = Metrics.counter m "jobs" in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "counter" 5 (Metrics.value c);
  Alcotest.(check int) "same name, same counter" 5 (Metrics.value (Metrics.counter m "jobs"));
  Metrics.gauge_set m "depth" 7;
  Metrics.gauge_set m "depth" 3;
  Alcotest.(check (option int)) "gauge current" (Some 3) (Metrics.find m "depth");
  let h = Metrics.histogram m "lat" in
  for v = 1 to 100 do
    Metrics.observe h v
  done;
  Alcotest.(check int) "hist count" 100 (Metrics.hist_count h);
  Alcotest.(check int) "hist max" 100 (Metrics.hist_max h);
  Alcotest.(check int) "hist sum" 5050 (Metrics.hist_sum h);
  let p50 = Metrics.hist_quantile h 0.5 in
  Alcotest.(check bool) "p50 bracket" true (p50 >= 32.0 && p50 <= 127.0);
  let dump = Metrics.dump m in
  Alcotest.(check bool) "dump lists all" true
    (Helpers.contains_sub dump "counter jobs 5"
    && Helpers.contains_sub dump "gauge depth 3 max=7"
    && Helpers.contains_sub dump "hist lat count=100");
  Metrics.reset m;
  Alcotest.(check int) "reset" 0 (Metrics.value c)

(* Round-trip: render the registry as Prometheus text exposition, parse it
   back with a dumb line parser, and check the numbers survived. *)
let test_metrics_prometheus () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "runtime/jobs_ok") 12;
  Metrics.gauge_set m "runtime/queue_depth" 9;
  Metrics.gauge_set m "runtime/queue_depth" 4;
  let h = Metrics.histogram m "runtime/batch_us" in
  List.iter (Metrics.observe h) [ 0; 1; 2; 3; 500; 70_000 ];
  let text = Metrics.dump_prometheus m in
  let lines = String.split_on_char '\n' text in
  let types = Hashtbl.create 8 and values = Hashtbl.create 8 in
  List.iter
    (fun line ->
      match String.split_on_char ' ' line with
      | [ "#"; "TYPE"; name; kind ] -> Hashtbl.replace types name kind
      | [ series; v ] when line <> "" && line.[0] <> '#' ->
          Hashtbl.replace values series (float_of_string v)
      | _ -> ())
    lines;
  let value s = Hashtbl.find_opt values s in
  Alcotest.(check (option string)) "counter typed" (Some "counter")
    (Hashtbl.find_opt types "anyseq_runtime_jobs_ok");
  Alcotest.(check (option (float 0.))) "counter value" (Some 12.) (value "anyseq_runtime_jobs_ok");
  Alcotest.(check (option string)) "gauge typed" (Some "gauge")
    (Hashtbl.find_opt types "anyseq_runtime_queue_depth");
  Alcotest.(check (option (float 0.))) "gauge current" (Some 4.)
    (value "anyseq_runtime_queue_depth");
  Alcotest.(check (option (float 0.))) "gauge high-water" (Some 9.)
    (value "anyseq_runtime_queue_depth_max");
  Alcotest.(check (option string)) "histogram typed" (Some "histogram")
    (Hashtbl.find_opt types "anyseq_runtime_batch_us");
  Alcotest.(check (option (float 0.))) "hist count" (Some 6.)
    (value "anyseq_runtime_batch_us_count");
  Alcotest.(check (option (float 0.))) "hist sum" (Some 70506.)
    (value "anyseq_runtime_batch_us_sum");
  Alcotest.(check (option (float 0.))) "+Inf bucket carries the total" (Some 6.)
    (value {|anyseq_runtime_batch_us_bucket{le="+Inf"}|});
  (* Buckets are cumulative and ordered: extract them in file order. *)
  let buckets =
    List.filter_map
      (fun line ->
        match String.split_on_char ' ' line with
        | [ series; v ]
          when Helpers.contains_sub series "anyseq_runtime_batch_us_bucket{le=\""
               && not (Helpers.contains_sub series "+Inf") ->
            Some (float_of_string v)
        | _ -> None)
      lines
  in
  Alcotest.(check bool) "at least one finite bucket" true (buckets <> []);
  let monotone =
    fst
      (List.fold_left (fun (ok, prev) v -> (ok && v >= prev, v)) (true, neg_infinity) buckets)
  in
  Alcotest.(check bool) "buckets cumulative" true monotone;
  Alcotest.(check (float 0.)) "last finite bucket <= count" 6. (List.nth buckets (List.length buckets - 1))

let test_metrics_kind_mismatch () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "x");
  Alcotest.check_raises "histogram over counter name"
    (Invalid_argument "Metrics: instrument kind mismatch for x") (fun () ->
      ignore (Metrics.histogram m "x"))

(* ------------------------------------------------------------------ *)
(* Native kernels: bit-identical to the generic linear-space engine    *)
(* ------------------------------------------------------------------ *)

let native_schemes =
  Helpers.schemes_under_test
  @ [ ("wildcard-linear", Scheme.wildcard_linear); ("blosum62", Scheme.blosum62_affine) ]

let native_matches_engine =
  Helpers.qtest ~count:60 "native kernel = Dp_linear (score and end cell)"
    QCheck2.Gen.(
      tup3 nat (oneofl native_schemes) (oneofl Helpers.modes_under_test))
    (fun (seed, (_, scheme), mode) ->
      let rng = Rng.create ~seed in
      let alphabet = Scheme.alphabet scheme in
      let nk = Option.get (Native_kernel.build scheme mode) in
      let ws = Anyseq_core.Scratch.create () in
      let ok = ref true in
      for _ = 1 to 10 do
        let q = Sequence.random rng alphabet ~len:(Rng.int rng 70) in
        let s = Sequence.random rng alphabet ~len:(Rng.int rng 70) in
        let qv = Sequence.view q and sv = Sequence.view s in
        let reference = Dp_linear.score_only scheme mode ~query:qv ~subject:sv in
        let native = nk.Native_kernel.score ~ws ~query:q ~subject:s in
        if reference <> native then ok := false
      done;
      !ok)

let align_repr (a : Alignment.t) =
  Printf.sprintf "%d %s q[%d,%d) s[%d,%d)" a.Alignment.score
    (Cigar.to_string a.Alignment.cigar)
    a.Alignment.query_start a.Alignment.query_end a.Alignment.subject_start
    a.Alignment.subject_end

let native_traceback_matches_engine =
  Helpers.qtest ~count:40 "native traceback = Engine.align (score, CIGAR, coords)"
    QCheck2.Gen.(
      tup3 nat (oneofl native_schemes) (oneofl Helpers.modes_under_test))
    (fun (seed, (_, scheme), mode) ->
      let rng = Rng.create ~seed in
      let alphabet = Scheme.alphabet scheme in
      let nk = Option.get (Native_kernel.build scheme mode) in
      let ws = Anyseq_core.Scratch.create () in
      let ok = ref true in
      for _ = 1 to 8 do
        let q = Sequence.random rng alphabet ~len:(Rng.int rng 70) in
        let s = Sequence.random rng alphabet ~len:(Rng.int rng 70) in
        let reference = Anyseq_core.Engine.align scheme mode ~query:q ~subject:s in
        let native = nk.Native_kernel.align ~ws ~query:q ~subject:s in
        if align_repr reference <> align_repr native then ok := false
      done;
      !ok)

let test_native_traceback_long_pairs () =
  (* Above [Engine.auto_full_matrix_limit] the native align must take the
     same Hirschberg route as the generic engine — and still match it
     bit-for-bit, CIGAR included. *)
  let rng = Rng.create ~seed:7 in
  List.iter
    (fun scheme ->
      List.iter
        (fun mode ->
          let alphabet = Scheme.alphabet scheme in
          let q = Sequence.random rng alphabet ~len:1100 in
          let s = Sequence.random rng alphabet ~len:1050 in
          let nk = Option.get (Native_kernel.build scheme mode) in
          let reference = Anyseq_core.Engine.align scheme mode ~query:q ~subject:s in
          let native =
            Workspace.with_ws (fun ws -> nk.Native_kernel.align ~ws ~query:q ~subject:s)
          in
          Alcotest.(check string)
            (Printf.sprintf "long pair, %s" (Scheme.to_string scheme))
            (align_repr reference) (align_repr native))
        [ T.Global; T.Semiglobal; T.Local ])
    [ Scheme.paper_linear; Scheme.paper_affine ]

let test_steady_state_allocation_budget () =
  (* The tentpole's acceptance bar: once arenas and kernels are warm, a
     score-only batch must stay under 100 minor words per alignment —
     parse + result plumbing only, nothing per DP cell or row. *)
  let svc = Service.create () in
  let rng = Rng.create ~seed:11 in
  let config = Anyseq.Config.make ~traceback:false ~backend:Anyseq.Config.Scalar () in
  let pairs =
    Array.init 64 (fun _ ->
        let q, s = Helpers.random_pair rng ~max_len:150 in
        (Sequence.to_string q, Sequence.to_string s))
  in
  let jobs =
    Array.map (fun (query, subject) -> Service.job ~config ~query ~subject ()) pairs
  in
  for _ = 1 to 3 do
    ignore (Service.run svc jobs)
  done;
  let w0 = Gc.minor_words () in
  let iters = 10 in
  for _ = 1 to iters do
    ignore (Service.run svc jobs)
  done;
  let per =
    (Gc.minor_words () -. w0) /. float_of_int (iters * Array.length jobs)
  in
  Alcotest.(check bool)
    (Printf.sprintf "steady-state %.1f minor words/alignment < 100" per)
    true (per < 100.0)

(* ------------------------------------------------------------------ *)
(* Specialization cache                                                *)
(* ------------------------------------------------------------------ *)

let mk_scheme ?name match_ =
  Scheme.make ?name (Substitution.simple Alphabet.dna4 ~match_ ~mismatch:(-1)) (Gaps.linear 1)

let test_cache_hits_and_misses () =
  let c = Spec_cache.create ~capacity:4 () in
  ignore (Spec_cache.get c Scheme.paper_linear T.Global);
  ignore (Spec_cache.get c Scheme.paper_linear T.Global);
  ignore (Spec_cache.get c Scheme.paper_linear T.Local);
  let st = Spec_cache.stats c in
  Alcotest.(check int) "misses" 2 st.Spec_cache.misses;
  Alcotest.(check int) "hits" 1 st.Spec_cache.hits;
  Alcotest.(check int) "size" 2 st.Spec_cache.size;
  Alcotest.(check (float 0.001)) "hit rate" (1.0 /. 3.0) (Spec_cache.hit_rate st)

let test_cache_lru_eviction () =
  let c = Spec_cache.create ~capacity:2 () in
  let a = mk_scheme ~name:"lru-a" 1
  and b = mk_scheme ~name:"lru-b" 2
  and d = mk_scheme ~name:"lru-d" 3 in
  ignore (Spec_cache.get c a T.Global);
  ignore (Spec_cache.get c b T.Global);
  ignore (Spec_cache.get c a T.Global);
  (* a is now more recent than b *)
  ignore (Spec_cache.get c d T.Global);
  (* capacity 2: b (least recently used) must go *)
  let st = Spec_cache.stats c in
  Alcotest.(check int) "one eviction" 1 st.Spec_cache.evictions;
  Alcotest.(check int) "bounded size" 2 st.Spec_cache.size;
  ignore (Spec_cache.get c a T.Global);
  let st = Spec_cache.stats c in
  Alcotest.(check int) "a survived (hit)" 2 st.Spec_cache.hits;
  ignore (Spec_cache.get c b T.Global);
  let st = Spec_cache.stats c in
  Alcotest.(check int) "b was evicted (miss)" 4 st.Spec_cache.misses

let test_cache_name_collision () =
  (* Two distinct schemes sharing a name must not share a kernel. *)
  let c = Spec_cache.create ~capacity:4 () in
  let s1 = mk_scheme ~name:"dup" 1 and s2 = mk_scheme ~name:"dup" 5 in
  let q = Sequence.of_string Alphabet.dna4 "AAAA" in
  let score scheme =
    let k = Spec_cache.get c scheme T.Global in
    ((Option.get k.Spec_cache.native).Native_kernel.score
       ~ws:(Anyseq_core.Scratch.create ()) ~query:q ~subject:q)
      .T.score
  in
  Alcotest.(check int) "first scheme kernel" 4 (score s1);
  Alcotest.(check int) "same-name scheme rebuilt, not reused" 20 (score s2);
  let st = Spec_cache.stats c in
  Alcotest.(check int) "conflict counted" 1 st.Spec_cache.invalidations

let test_cache_verify_invalidation () =
  let saved = !Anyseq_core.Staged_kernel.verify_specializations in
  Fun.protect
    ~finally:(fun () -> Anyseq_core.Staged_kernel.verify_specializations := saved)
    (fun () ->
      let c = Spec_cache.create () in
      Anyseq_core.Staged_kernel.verify_specializations := false;
      ignore (Spec_cache.get c Scheme.paper_linear T.Global);
      (* Flipping the verification flag must rebuild, not serve stale. *)
      Anyseq_core.Staged_kernel.verify_specializations := true;
      ignore (Spec_cache.get c Scheme.paper_linear T.Global);
      let st = Spec_cache.stats c in
      Alcotest.(check int) "invalidated" 1 st.Spec_cache.invalidations;
      Alcotest.(check int) "rebuilt" 2 st.Spec_cache.misses;
      ignore (Spec_cache.get c Scheme.paper_linear T.Global);
      let st = Spec_cache.stats c in
      Alcotest.(check int) "stable afterwards" 1 st.Spec_cache.hits)

(* ------------------------------------------------------------------ *)
(* Service: admission control, deadlines, error surfacing              *)
(* ------------------------------------------------------------------ *)

let score_config = Anyseq.Config.make ~traceback:false ()

let test_service_backpressure () =
  let svc = Service.create ~capacity:4 () in
  let jobs =
    Array.init 10 (fun _ -> Service.job ~config:score_config ~query:"ACGT" ~subject:"ACGT" ())
  in
  let results = Service.run svc jobs in
  let ok = Array.length (Array.of_seq (Seq.filter Result.is_ok (Array.to_seq results))) in
  Alcotest.(check int) "admitted = capacity" 4 ok;
  Array.iteri
    (fun i r ->
      if i < 4 then Alcotest.(check bool) (Printf.sprintf "job %d ok" i) true (Result.is_ok r)
      else
        match r with
        | Error Error.Rejected -> ()
        | _ -> Alcotest.failf "job %d should be rejected" i)
    results;
  Alcotest.(check int) "slots released" 0 (Service.queue_depth svc);
  (* capacity freed: a new submission is admitted again *)
  let r = Service.run_one svc (Service.job ~config:score_config ~query:"AC" ~subject:"AC" ()) in
  Alcotest.(check bool) "after release" true (Result.is_ok r)

let test_service_timeout () =
  let svc = Service.create () in
  let jobs =
    [|
      Service.job ~config:score_config ~timeout_s:0.0 ~query:"ACGT" ~subject:"ACGT" ();
      Service.job ~config:Anyseq.Config.default ~timeout_s:0.0 ~query:"ACGT" ~subject:"ACGT" ();
      Service.job ~config:score_config ~query:"ACGT" ~subject:"ACGT" ();
    |]
  in
  (match Service.run svc jobs with
  | [| Error Error.Timeout; Error Error.Timeout; Ok _ |] -> ()
  | r ->
      Alcotest.failf "expected [timeout; timeout; ok], got [%s]"
        (String.concat "; "
           (Array.to_list
              (Array.map
                 (function Ok _ -> "ok" | Error e -> Error.to_string e)
                 r))));
  let m = Service.metrics svc in
  Alcotest.(check (option int)) "timeouts counted" (Some 2)
    (Metrics.find m "runtime/jobs_timed_out")

let test_service_bad_sequence () =
  let svc = Service.create () in
  let strict = Anyseq.Config.make ~scheme:Scheme.paper_linear ~traceback:false () in
  let jobs =
    [|
      Service.job ~config:strict ~query:"ACGN" ~subject:"ACGT" ();
      Service.job ~config:strict ~query:"ACGT" ~subject:"ACGT" ();
    |]
  in
  match Service.run svc jobs with
  | [| Error (Error.Bad_sequence _); Ok o |] -> Alcotest.(check int) "good job unaffected" 8 o.Service.score
  | _ -> Alcotest.fail "expected [bad_sequence; ok]"

let overflow_scheme = mk_scheme ~name:"hot" 20000

let test_overflow_bound_parity () =
  let q = String.concat "" (List.init 10 (fun _ -> "A")) in
  let simd_score = Anyseq.Config.make ~scheme:overflow_scheme ~traceback:false ~backend:Anyseq.Config.Simd () in
  (* batch path *)
  let svc = Service.create () in
  (match Service.run_one svc (Service.job ~config:simd_score ~query:q ~subject:q ()) with
  | Error (Error.Overflow_bound _) -> ()
  | _ -> Alcotest.fail "batch: expected overflow_bound");
  (* single-align path fails identically *)
  (match Anyseq.align ~config:simd_score ~query:q ~subject:q with
  | Error (Error.Overflow_bound _) -> ()
  | _ -> Alcotest.fail "align: expected overflow_bound");
  (* scalar backend on the same job is fine... *)
  let scalar = { simd_score with Anyseq.Config.backend = Anyseq.Config.Scalar } in
  Alcotest.(check bool) "scalar ok" true
    (Result.is_ok (Anyseq.align ~config:scalar ~query:q ~subject:q));
  (* ...and so is traceback, which never uses the 16-bit kernels *)
  let simd_tb = { simd_score with Anyseq.Config.traceback = true } in
  Alcotest.(check bool) "traceback ok" true
    (Result.is_ok (Anyseq.align ~config:simd_tb ~query:q ~subject:q))

(* ------------------------------------------------------------------ *)
(* The API contract: align_batch = n independent aligns                *)
(* ------------------------------------------------------------------ *)

let repr (r : (Anyseq.aligned, Error.t) result) =
  match r with
  | Error e -> "error: " ^ Error.to_string e
  | Ok a ->
      Printf.sprintf "%d/%s/%s/%s" a.Anyseq.score a.Anyseq.query_aligned a.Anyseq.subject_aligned
        (match a.Anyseq.alignment with
        | None -> "-"
        | Some al ->
            Printf.sprintf "%s@q[%d,%d)s[%d,%d)" (Cigar.to_string al.Alignment.cigar)
              al.Alignment.query_start al.Alignment.query_end al.Alignment.subject_start
              al.Alignment.subject_end)

let backends_under_test =
  Anyseq.Config.[ Auto; Scalar; Simd; Wavefront ]

let batch_equals_sequential =
  Helpers.qtest ~count:48 "align_batch = sequential aligns (scores, CIGARs, errors)"
    QCheck2.Gen.(
      tup5 nat
        (oneofl Helpers.schemes_under_test)
        (oneofl Helpers.modes_under_test)
        (oneofl backends_under_test) bool)
    (fun (seed, (_, scheme), mode, backend, traceback) ->
      let rng = Rng.create ~seed in
      let pairs =
        Array.init 11 (fun _ ->
            let q, s = Helpers.random_pair rng ~max_len:40 in
            (Sequence.to_string q, Sequence.to_string s))
      in
      let config = Anyseq.Config.make ~scheme ~mode ~traceback ~backend () in
      let service = Service.create () in
      let batch = Anyseq.align_batch ~service ~config pairs in
      Array.for_all2
        (fun b (query, subject) -> repr b = repr (Anyseq.align ~config ~query ~subject))
        batch pairs)

(* ------------------------------------------------------------------ *)
(* Proof-directed bit-parallel tier                                    *)
(* ------------------------------------------------------------------ *)

let tier_count svc name = Metrics.find (Service.metrics svc) ("runtime/tier_" ^ name)

(* Global score-only batches under a Unit_cost-certified scheme must route
   through the Myers tier (visible in the per-tier counters) and stay
   bit-identical — score and end cell — to the generic engine, across
   multi-word (>64) lengths and empty/degenerate inputs. *)
let test_myers_tier_differential () =
  let rng = Rng.create ~seed:4242 in
  let config =
    Anyseq.Config.make ~scheme:Scheme.unit_cost ~mode:T.Global ~traceback:false ()
  in
  let lens = [| 0; 1; 2; 63; 64; 65; 127; 128; 200 |] in
  let pairs =
    Array.init 40 (fun i ->
        let pick () =
          if i < Array.length lens then lens.(i mod Array.length lens)
          else Rng.int rng 201
        in
        ( Sequence.to_string (Helpers.random_dna rng ~len:(pick ())),
          Sequence.to_string (Helpers.random_dna rng ~len:(pick ())) ))
  in
  let svc = Service.create () in
  let jobs =
    Array.map (fun (q, s) -> Service.job ~config ~query:q ~subject:s ()) pairs
  in
  Anyseq_trace.Trace.enable ();
  let results =
    Fun.protect ~finally:Anyseq_trace.Trace.disable (fun () -> Service.run svc jobs)
  in
  Alcotest.(check bool) "dispatch visible as backend.myers span" true
    (List.exists
       (fun (s : Anyseq_trace.Trace.span) -> s.Anyseq_trace.Trace.name = "backend.myers")
       (Anyseq_trace.Trace.spans ()));
  Anyseq_trace.Trace.clear ();
  Array.iteri
    (fun i r ->
      let query, subject = pairs.(i) in
      match r with
      | Error e -> Alcotest.failf "job %d failed: %s" i (Error.to_string e)
      | Ok o ->
          let qv = Sequence.view (Sequence.of_string Alphabet.dna4 query)
          and sv = Sequence.view (Sequence.of_string Alphabet.dna4 subject) in
          let reference = Dp_linear.score_only Scheme.unit_cost T.Global ~query:qv ~subject:sv in
          Alcotest.(check int) (Printf.sprintf "job %d score" i) reference.T.score o.Service.score;
          Alcotest.(check int) (Printf.sprintf "job %d qend" i) reference.T.query_end
            o.Service.query_end;
          Alcotest.(check int) (Printf.sprintf "job %d send" i) reference.T.subject_end
            o.Service.subject_end)
    results;
  Alcotest.(check (option int)) "all jobs on the bit-parallel tier"
    (Some (Array.length jobs)) (tier_count svc "bitparallel");
  Alcotest.(check bool) "no jobs on the native tier" true
    (match tier_count svc "native" with None | Some 0 -> true | Some _ -> false)

(* Certificates, not names, gate the tier: a non-unit scheme must never
   touch the bit-parallel counter, and unit-cost jobs asking for traceback
   or non-global modes stay off it too. *)
let test_myers_tier_gating () =
  let rng = Rng.create ~seed:77 in
  let pairs =
    Array.init 12 (fun _ ->
        let q, s = Helpers.random_pair rng ~max_len:50 in
        (Sequence.to_string q, Sequence.to_string s))
  in
  let run_config config =
    let svc = Service.create () in
    let jobs = Array.map (fun (q, s) -> Service.job ~config ~query:q ~subject:s ()) pairs in
    Array.iter
      (fun r -> if Result.is_error r then Alcotest.fail "job failed")
      (Service.run svc jobs);
    tier_count svc "bitparallel"
  in
  let off config name =
    match run_config config with
    | None | Some 0 -> ()
    | Some n -> Alcotest.failf "%s: %d jobs on the bit-parallel tier" name n
  in
  off (Anyseq.Config.make ~scheme:Scheme.paper_linear ~mode:T.Global ~traceback:false ())
    "paper-linear global";
  off (Anyseq.Config.make ~scheme:Scheme.unit_cost ~mode:T.Local ~traceback:false ())
    "unit-cost local";
  off (Anyseq.Config.make ~scheme:Scheme.unit_cost ~mode:T.Semiglobal ~traceback:false ())
    "unit-cost semiglobal";
  off (Anyseq.Config.make ~scheme:Scheme.unit_cost ~mode:T.Global ~traceback:true ())
    "unit-cost traceback";
  Alcotest.(check (option int)) "unit-cost global score-only routes" (Some (Array.length pairs))
    (run_config (Anyseq.Config.make ~scheme:Scheme.unit_cost ~mode:T.Global ~traceback:false ()))

(* The banded tier: score-only unit-cost global jobs carrying a
   [max_dist] cap route through the Ukkonen-banded Myers engine — visible
   as the [tier_banded] counter and the [backend.myers_banded] span — and
   must be bit-identical to the uncapped tier whenever the cap is not
   exceeded. A cap below the true distance answers [Error Cutoff] and
   bumps [tier_banded_cutoff]; a mixed batch splits across both
   counters. *)
let test_banded_tier_differential () =
  let rng = Rng.create ~seed:9191 in
  let config =
    Anyseq.Config.make ~scheme:Scheme.unit_cost ~mode:T.Global ~traceback:false ()
  in
  let lens = [| 0; 1; 61; 62; 63; 124; 130; 200 |] in
  let pairs =
    Array.init 32 (fun i ->
        let pick () =
          if i < Array.length lens then lens.(i mod Array.length lens)
          else Rng.int rng 201
        in
        ( Sequence.to_string (Helpers.random_dna rng ~len:(pick ())),
          Sequence.to_string (Helpers.random_dna rng ~len:(pick ())) ))
  in
  (* generous cap: never exceeded, so every job must succeed with the
     exact uncapped score *)
  let svc = Service.create () in
  let capped =
    Array.map
      (fun (q, s) ->
        Service.job ~config ~max_dist:(String.length q + String.length s) ~query:q
          ~subject:s ())
      pairs
  in
  Anyseq_trace.Trace.enable ();
  let results =
    Fun.protect ~finally:Anyseq_trace.Trace.disable (fun () -> Service.run svc capped)
  in
  Alcotest.(check bool) "dispatch visible as backend.myers_banded span" true
    (List.exists
       (fun (s : Anyseq_trace.Trace.span) ->
         s.Anyseq_trace.Trace.name = "backend.myers_banded")
       (Anyseq_trace.Trace.spans ()));
  Anyseq_trace.Trace.clear ();
  Array.iteri
    (fun i r ->
      let query, subject = pairs.(i) in
      match r with
      | Error e -> Alcotest.failf "capped job %d failed: %s" i (Error.to_string e)
      | Ok o ->
          let qv = Sequence.view (Sequence.of_string Alphabet.dna4 query)
          and sv = Sequence.view (Sequence.of_string Alphabet.dna4 subject) in
          let reference =
            Dp_linear.score_only Scheme.unit_cost T.Global ~query:qv ~subject:sv
          in
          Alcotest.(check int) (Printf.sprintf "job %d score" i) reference.T.score
            o.Service.score;
          Alcotest.(check int) (Printf.sprintf "job %d qend" i) reference.T.query_end
            o.Service.query_end;
          Alcotest.(check int) (Printf.sprintf "job %d send" i) reference.T.subject_end
            o.Service.subject_end)
    results;
  Alcotest.(check (option int)) "all capped jobs on the banded tier"
    (Some (Array.length capped)) (tier_count svc "banded");
  Alcotest.(check bool) "no cutoffs under the generous cap" true
    (match tier_count svc "banded_cutoff" with None | Some 0 -> true | Some _ -> false);
  Alcotest.(check bool) "uncapped tier untouched" true
    (match tier_count svc "bitparallel" with None | Some 0 -> true | Some _ -> false)

let test_banded_tier_cutoff_and_mix () =
  let config =
    Anyseq.Config.make ~scheme:Scheme.unit_cost ~mode:T.Global ~traceback:false ()
  in
  (* distance exactly 4: ACGTACGT vs TGCATGCA style divergent pair *)
  let q = "ACGTACGTACGT" and s = "ACGAACGAACGA" in
  let qv = Sequence.view (Sequence.of_string Alphabet.dna4 q)
  and sv = Sequence.view (Sequence.of_string Alphabet.dna4 s) in
  let exact =
    -(Dp_linear.score_only Scheme.unit_cost T.Global ~query:qv ~subject:sv).T.score
  in
  Alcotest.(check bool) "pair is genuinely divergent" true (exact > 0);
  let svc = Service.create () in
  let jobs =
    [|
      Service.job ~config ~max_dist:exact ~query:q ~subject:s ();
      Service.job ~config ~max_dist:(exact - 1) ~query:q ~subject:s ();
      Service.job ~config ~query:q ~subject:s ();
      Service.job ~config ~max_dist:0 ~query:q ~subject:s ();
    |]
  in
  let results = Service.run svc jobs in
  (match results.(0) with
  | Ok o -> Alcotest.(check int) "cap = distance succeeds exactly" (-exact) o.Service.score
  | Error e -> Alcotest.failf "cap-at-distance failed: %s" (Error.to_string e));
  (match results.(1) with
  | Error Error.Cutoff -> ()
  | _ -> Alcotest.fail "cap below distance must answer Cutoff");
  (match results.(2) with
  | Ok o -> Alcotest.(check int) "uncapped job rides the full tier" (-exact) o.Service.score
  | Error e -> Alcotest.failf "uncapped job failed: %s" (Error.to_string e));
  (match results.(3) with
  | Error Error.Cutoff -> ()
  | _ -> Alcotest.fail "zero cap on a divergent pair must answer Cutoff");
  Alcotest.(check (option int)) "three jobs banded" (Some 3) (tier_count svc "banded");
  Alcotest.(check (option int)) "two of them cut off" (Some 2)
    (tier_count svc "banded_cutoff");
  Alcotest.(check (option int)) "one job on the full tier" (Some 1)
    (tier_count svc "bitparallel")

let test_tier_counters_prometheus () =
  let rng = Rng.create ~seed:5150 in
  let svc = Service.create () in
  let submit scheme =
    let config = Anyseq.Config.make ~scheme ~mode:T.Global ~traceback:false () in
    let jobs =
      Array.init 9 (fun _ ->
          let q, s = Helpers.random_pair rng ~max_len:40 in
          Service.job ~config ~query:(Sequence.to_string q) ~subject:(Sequence.to_string s) ())
    in
    Array.iter (fun r -> if Result.is_error r then Alcotest.fail "job failed") (Service.run svc jobs)
  in
  submit Scheme.unit_cost;
  submit Scheme.paper_linear;
  let text = Metrics.dump_prometheus (Service.metrics svc) in
  let value series =
    List.find_map
      (fun line ->
        match String.split_on_char ' ' line with
        | [ s; v ] when s = series -> Some (float_of_string v)
        | _ -> None)
      (String.split_on_char '\n' text)
  in
  Alcotest.(check (option (float 0.))) "bitparallel tier exported" (Some 9.)
    (value "anyseq_runtime_tier_bitparallel");
  (* The same scrape shows the non-unit batch routed onto a scalar tier. *)
  let native = Option.value ~default:0. (value "anyseq_runtime_tier_native")
  and staged = Option.value ~default:0. (value "anyseq_runtime_tier_staged") in
  Alcotest.(check (float 0.)) "non-unit batch on scalar tiers" 9. (native +. staged)

(* Remote unit-cost jobs must reach the fast tier: the wire config
   [Named "unit-cost"] survives encode/decode and resolves to the builtin
   scheme {e value} (physical equality is what the specialization cache
   and the certificate analysis key on). *)
let test_wire_unit_cost_round_trip () =
  let wire_config =
    { Wire.default_config with Wire.scheme = Wire.Named "unit-cost"; mode = T.Global }
  in
  let request =
    {
      Wire.id = 42L;
      config = wire_config;
      timeout_s = None;
      query = "ACGT";
      subject = "AGT";
      trace = None;
    }
  in
  let bytes = Wire.encode_request request in
  (match Wire.decode_frame bytes with
  | Error `Incomplete -> Alcotest.fail "incomplete frame"
  | Error (`Malformed m) -> Alcotest.failf "malformed frame: %s" m
  | Ok (Wire.Reply _, _) -> Alcotest.fail "expected a request frame"
  | Ok (Wire.Request r, _) ->
      Alcotest.(check bool) "scheme spec survives" true (r.Wire.config = wire_config));
  match Wire.resolve_config wire_config with
  | Error m -> Alcotest.failf "resolve failed: %s" m
  | Ok cfg ->
      Alcotest.(check bool) "resolves to the builtin value" true
        (cfg.Anyseq.Config.scheme == Scheme.unit_cost);
      (* A structurally unit-cost Simple spec also certifies — the analysis
         is semantic, so remote clients need not know the builtin's name. *)
      let simple =
        {
          wire_config with
          Wire.scheme =
            Wire.Simple
              { alphabet = `Dna4; match_ = 0; mismatch = -1; gap_open = 0; gap_extend = 1 };
        }
      in
      (match Wire.resolve_config simple with
      | Error m -> Alcotest.failf "simple resolve failed: %s" m
      | Ok cfg ->
          Alcotest.(check bool) "structural unit-cost certifies" true
            (Anyseq_analysis.Property.unit_cost
               (Anyseq_analysis.Property.analyze cfg.Anyseq.Config.scheme)
            <> None))

let test_mixed_configs_one_batch () =
  (* One submission mixing configurations: grouping must dispatch each job
     under its own configuration and keep submission order. *)
  let rng = Rng.create ~seed:99 in
  let configs =
    [|
      Anyseq.Config.make ~mode:T.Global ~traceback:false ();
      Anyseq.Config.make ~mode:T.Local ();
      Anyseq.Config.make ~scheme:Scheme.paper_affine ~mode:T.Semiglobal ~traceback:false
        ~backend:Anyseq.Config.Simd ();
      Anyseq.Config.make ~mode:T.Global ~traceback:false ();
    |]
  in
  let svc = Service.create () in
  let jobs =
    Array.init 24 (fun i ->
        let q, s = Helpers.random_pair rng ~max_len:30 in
        Service.job ~config:configs.(i mod 4)
          ~query:(Sequence.to_string q) ~subject:(Sequence.to_string s) ())
  in
  let results = Service.run svc jobs in
  Array.iteri
    (fun i r ->
      let j = jobs.(i) in
      let expected =
        Anyseq.align ~config:j.Service.config ~query:j.Service.query ~subject:j.Service.subject
      in
      let got =
        Result.map
          (fun (o : Service.outcome) ->
            {
              Anyseq.score = o.Service.score;
              query_aligned = "";
              subject_aligned = "";
              alignment = o.Service.alignment;
            })
          r
      in
      let expected =
        Result.map (fun a -> { a with Anyseq.query_aligned = ""; subject_aligned = "" }) expected
      in
      Alcotest.(check string) (Printf.sprintf "job %d" i) (repr expected) (repr got))
    results

let test_service_drain () =
  let svc = Service.create () in
  (* A draining service rejects whole batches... *)
  Service.drain svc;
  Alcotest.(check bool) "draining" true (Service.is_draining svc);
  (match Service.run_one svc (Service.job ~config:score_config ~query:"AC" ~subject:"AC" ()) with
  | Error Error.Rejected -> ()
  | Ok _ -> Alcotest.fail "draining service admitted a job"
  | Error e -> Alcotest.failf "expected Rejected, got %s" (Error.to_string e));
  (* ...drain is idempotent, and reopen restores admission. *)
  Service.drain svc;
  Service.reopen svc;
  Alcotest.(check bool) "reopened" false (Service.is_draining svc);
  let r = Service.run_one svc (Service.job ~config:score_config ~query:"AC" ~subject:"AC" ()) in
  Alcotest.(check bool) "admitted after reopen" true (Result.is_ok r)

let test_service_drain_waits_for_in_flight () =
  (* Submitters run in domains; drain must block until their admitted jobs
     have released every slot, and late submitters must see Rejected. *)
  let svc = Service.create ~capacity:4096 () in
  let started = Atomic.make 0 in
  let rng = Rng.create ~seed:99 in
  let pairs =
    Array.init 64 (fun _ ->
        let q, s = Helpers.random_pair rng ~max_len:96 in
        (Sequence.to_string q, Sequence.to_string s))
  in
  let submitter () =
    Domain.spawn (fun () ->
        Atomic.incr started;
        let config = Anyseq.Config.make ~traceback:false () in
        Anyseq.align_batch ~service:svc ~config pairs)
  in
  let d1 = submitter () and d2 = submitter () in
  (* Wait until both submitters are live so drain races real work. *)
  while Atomic.get started < 2 do
    Domain.cpu_relax ()
  done;
  Service.drain svc;
  Alcotest.(check int) "no jobs in flight after drain" 0 (Service.queue_depth svc);
  let r1 = Domain.join d1 and r2 = Domain.join d2 in
  (* Every job either completed normally or was rejected by the gate —
     never lost, never half-done. *)
  Array.iter
    (fun results ->
      Array.iter
        (function
          | Ok _ | Error Error.Rejected -> ()
          | Error e -> Alcotest.failf "unexpected error during drain: %s" (Error.to_string e))
        results)
    [| r1; r2 |];
  Alcotest.(check int) "slots all released" 0 (Service.queue_depth svc)

let test_concurrent_submitters () =
  (* Several domains hammer one shared service: the cache mutex, the
     admission counter, and result slotting must all hold up. *)
  let svc = Service.create ~capacity:4096 () in
  let domains = 4 and per_domain = 40 in
  let mismatches = Array.make domains 0 in
  Domain_pool.run ~domains (fun id ->
      let rng = Rng.create ~seed:(1000 + id) in
      let pairs =
        Array.init per_domain (fun _ ->
            let q, s = Helpers.random_pair rng ~max_len:32 in
            (Sequence.to_string q, Sequence.to_string s))
      in
      let mode = Helpers.modes_under_test |> List.filteri (fun i _ -> i = id mod 3) |> List.hd in
      let config = Anyseq.Config.make ~mode ~traceback:false () in
      let results = Anyseq.align_batch ~service:svc ~config pairs in
      Array.iteri
        (fun i r ->
          let query, subject = pairs.(i) in
          if repr r <> repr (Anyseq.align ~config ~query ~subject) then
            mismatches.(id) <- mismatches.(id) + 1)
        results);
  Alcotest.(check (array int)) "all domains consistent" (Array.make domains 0) mismatches;
  Alcotest.(check int) "all slots released" 0 (Service.queue_depth svc);
  let st = Service.cache_stats svc in
  Alcotest.(check bool) "cache bounded" true (st.Spec_cache.size <= st.Spec_cache.capacity)

(* ------------------------------------------------------------------ *)
(* Sharded runtime: determinism, stealing, per-shard backpressure      *)
(* ------------------------------------------------------------------ *)

(* A skewed job-length mix: mostly short reads, every eighth pair an
   order of magnitude longer — the distribution that unbalances
   round-robin placement and makes stealing earn its keep. *)
let skewed_pairs rng count =
  Array.init count (fun i ->
      let len () = if i mod 8 = 0 then 200 + Rng.int rng 201 else 8 + Rng.int rng 33 in
      ( Sequence.to_string (Helpers.random_dna rng ~len:(len ())),
        Sequence.to_string (Helpers.random_dna rng ~len:(len ())) ))

(* Results must be independent of the shard count: scores, CIGARs and
   errors at shards 1/2/4 all equal the sequential facade answers, under
   both score-only and traceback configs over the skewed mix. *)
let test_shard_determinism () =
  let configs =
    [
      Anyseq.Config.make ~traceback:false ();
      Anyseq.Config.make ~mode:T.Local ~traceback:true ();
    ]
  in
  List.iter
    (fun shards ->
      let svc = Service.create ~shards () in
      Alcotest.(check int) "shard count" shards (Service.shards svc);
      Fun.protect
        ~finally:(fun () -> Service.shutdown svc)
        (fun () ->
          List.iter
            (fun config ->
              let rng = Rng.create ~seed:777 in
              let pairs = skewed_pairs rng 48 in
              let results = Anyseq.align_batch ~service:svc ~config pairs in
              Array.iteri
                (fun i r ->
                  let query, subject = pairs.(i) in
                  Alcotest.(check string)
                    (Printf.sprintf "shards=%d pair %d" shards i)
                    (repr (Anyseq.align ~config ~query ~subject))
                    (repr r))
                results)
            configs;
          Alcotest.(check int)
            (Printf.sprintf "shards=%d slots released" shards)
            0 (Service.queue_depth svc)))
    [ 1; 2; 4 ]

(* The submit/await seam itself: submit returns while chunks are queued,
   await settles them, a second await returns the settled array. *)
let test_submit_await () =
  let svc = Service.create () in
  let rng = Rng.create ~seed:31 in
  let pairs = skewed_pairs rng 24 in
  let config = Anyseq.Config.make ~traceback:false () in
  let jobs =
    Array.map (fun (query, subject) -> Service.job ~config ~query ~subject ()) pairs
  in
  let tk = Service.submit svc jobs in
  let results = Service.await tk in
  Alcotest.(check int) "one slot per job" (Array.length jobs) (Array.length results);
  let again = Service.await tk in
  Alcotest.(check bool) "await is idempotent" true (results == again);
  Array.iteri
    (fun i r ->
      let query, subject = pairs.(i) in
      match (r, Anyseq.align ~config ~query ~subject) with
      | Ok (o : Service.outcome), Ok a ->
          Alcotest.(check int) (Printf.sprintf "pair %d" i) a.Anyseq.score o.Service.score
      | _ -> Alcotest.failf "pair %d: unexpected failure" i)
    results;
  (* run is literally submit+await *)
  let direct = Service.run svc jobs in
  Array.iteri
    (fun i r ->
      Alcotest.(check bool)
        (Printf.sprintf "run = submit+await, job %d" i)
        true
        ((Result.is_ok r) = Result.is_ok results.(i)))
    direct

(* Work-stealing units over the generic pool with int chunks. *)
let test_shard_pool_units () =
  let p : int Shard.pool = Shard.create ~shards:3 ~capacity:10 () in
  Alcotest.(check int) "shards" 3 (Shard.shards p);
  (* capacity split 4/3/3 *)
  Alcotest.(check (list int)) "budget split" [ 4; 3; 3 ]
    (List.init 3 (Shard.capacity_of p));
  (* reserve prefers home, overflows in ring order *)
  let g = Shard.reserve p ~home:1 5 in
  Alcotest.(check (array int)) "home then ring" [| 0; 3; 2 |] g;
  Alcotest.(check int) "in flight" 5 (Shard.in_flight p);
  Shard.release p 1 3;
  Shard.release p 2 2;
  Alcotest.(check int) "released" 0 (Shard.in_flight p);
  (* queues: own pop first, then ring-order steal-half, FIFO within a
     queue. Shard 0 holds three chunks; the thief takes the oldest and
     migrates half the remainder (ceil(2/2) = 1 chunk) to its own queue. *)
  Alcotest.(check bool) "push 0" true (Shard.push p 0 100);
  Alcotest.(check bool) "push 0 again" true (Shard.push p 0 101);
  Alcotest.(check bool) "push 0 third" true (Shard.push p 0 102);
  Alcotest.(check bool) "push 1" true (Shard.push p 1 200);
  (match Shard.try_take ~self:1 p with
  | Some (200, 1) -> ()
  | _ -> Alcotest.fail "own queue first");
  (match Shard.try_take ~self:1 p with
  | Some (100, 0) -> () (* oldest chunk of the victim *)
  | _ -> Alcotest.fail "steals the oldest sibling chunk");
  (match Shard.try_take ~self:1 p with
  | Some (101, 1) -> () (* migrated by the steal, FIFO order preserved *)
  | _ -> Alcotest.fail "batch-stolen chunk sits in the thief's own queue");
  (match Shard.try_take p with
  | Some (102, 0) -> () (* the un-migrated half stayed behind *)
  | _ -> Alcotest.fail "caller help finds the chunk left on the victim");
  Alcotest.(check (option (pair int int))) "empty" None (Shard.try_take p);
  let st = Shard.stats p in
  Alcotest.(check int) "victim counts taken + migrated + helped" 3
    st.(0).Shard.s_stolen_from;
  Alcotest.(check int) "thief counts taken + migrated" 2 st.(1).Shard.s_steals;
  Alcotest.(check int) "local pops counted" 2 st.(1).Shard.s_run_local;
  Alcotest.(check int) "caller help counted" 1 (Shard.helped p);
  (* queue bound: a full queue refuses, place overflows to a sibling *)
  let q : int Shard.pool = Shard.create ~shards:2 ~capacity:64 ~queue_bound:1 () in
  Alcotest.(check bool) "first fits" true (Shard.push q 0 1);
  Alcotest.(check bool) "bound enforced" false (Shard.push q 0 2);
  (match Shard.place q 3 with
  | Some s -> Alcotest.(check int) "overflowed to the free shard" 1 s
  | None -> Alcotest.fail "place must overflow before giving up");
  (match Shard.place q 4 with
  | None -> ()
  | Some _ -> Alcotest.fail "every queue full must refuse");
  (* closed pool grants nothing, from any entry point *)
  Shard.close p;
  Alcotest.(check (array int)) "closed grants zeros" [| 0; 0; 0 |] (Shard.reserve p ~home:0 4);
  Alcotest.(check int) "closed reserve_on" 0 (Shard.reserve_on p 2 1);
  Shard.reopen p;
  Alcotest.(check int) "reopened" 1 (Shard.reserve_on p 2 1)

(* One saturated shard must not poison its siblings: budget exhausted on
   shard 0 still leaves shard 1's slots reachable through overflow. *)
let test_shard_backpressure_isolation () =
  let p : unit Shard.pool = Shard.create ~shards:2 ~capacity:8 () in
  Alcotest.(check int) "saturate shard 0" 4 (Shard.reserve_on p 0 4);
  Alcotest.(check int) "shard 0 exhausted" 0 (Shard.reserve_on p 0 1);
  let g = Shard.reserve p ~home:0 6 in
  Alcotest.(check (array int)) "sibling still grants its slice" [| 0; 4 |] g;
  Shard.release p 0 4;
  Alcotest.(check int) "shard 0 usable again" 2 (Shard.reserve_on p 0 2);
  (* and through the service: a 2-shard pool still answers the classic
     backpressure contract — prefix admission, Rejected beyond the pool
     budget, slots released afterwards *)
  let svc = Service.create ~capacity:4 ~shards:2 () in
  Fun.protect
    ~finally:(fun () -> Service.shutdown svc)
    (fun () ->
      let jobs =
        Array.init 10 (fun _ ->
            Service.job ~config:score_config ~query:"ACGT" ~subject:"ACGT" ())
      in
      let results = Service.run svc jobs in
      Array.iteri
        (fun i r ->
          if i < 4 then
            Alcotest.(check bool) (Printf.sprintf "job %d admitted" i) true (Result.is_ok r)
          else
            match r with
            | Error Error.Rejected -> ()
            | _ -> Alcotest.failf "job %d should be rejected" i)
        results;
      Alcotest.(check int) "slots released" 0 (Service.queue_depth svc))

(* Force a deterministic batch theft with real worker domains: one
   blocking chunk per shard pins both workers, a three-chunk backlog
   lands on shard 0 while they are pinned, then only worker 1 is
   released. Its own queue is empty, so its first take MUST be a
   steal-half from shard 0 — chunk 2 to run plus chunk 3 migrated into
   its own queue — followed by a local pop of chunk 3 and a lone steal
   of chunk 4. Stats are asserted as deltas against a snapshot taken
   while both workers were pinned, so the start-up race over the
   blockers cannot leak into the counts. *)
let test_shard_workers_steal () =
  let p : int Shard.pool = Shard.create ~shards:2 ~capacity:8 () in
  let gates = [| Atomic.make false; Atomic.make false |] in
  let started = Atomic.make 0 in
  let ran = Atomic.make 0 in
  let log = Array.make 5 (-1, -1) in
  Shard.start_workers p ~exec:(fun ~executor ~home x ->
      log.(x) <- (executor, home);
      if x < 2 then begin
        Atomic.incr started;
        while not (Atomic.get gates.(x)) do
          Domain.cpu_relax ()
        done
      end
      else Atomic.incr ran);
  Alcotest.(check bool) "blocker 0 queued" true (Shard.push p 0 0);
  Alcotest.(check bool) "blocker 1 queued" true (Shard.push p 1 1);
  while Atomic.get started < 2 do
    Domain.cpu_relax ()
  done;
  (* whichever way the start-up race assigned the blockers, each worker
     is pinned inside exactly one of them *)
  let blocker_of w = if fst log.(0) = w then 0 else 1 in
  Alcotest.(check bool) "each worker pinned on one blocker" true
    (List.sort compare [ fst log.(0); fst log.(1) ] = [ 0; 1 ]);
  let base = Shard.stats p in
  Alcotest.(check bool) "chunk 2 queued" true (Shard.push p 0 2);
  Alcotest.(check bool) "chunk 3 queued" true (Shard.push p 0 3);
  Alcotest.(check bool) "chunk 4 queued" true (Shard.push p 0 4);
  Atomic.set gates.(blocker_of 1) true;
  while Atomic.get ran < 3 do
    Domain.cpu_relax ()
  done;
  let st = Shard.stats p in
  Atomic.set gates.(blocker_of 0) true;
  Shard.shutdown p;
  (* worker 1 executed the whole backlog *)
  Array.iteri
    (fun x (executor, _) ->
      if x >= 2 then Alcotest.(check int) (Printf.sprintf "chunk %d on worker 1" x) 1 executor)
    log;
  (* chunk 3 was batch-migrated: it came out of the thief's own queue *)
  Alcotest.(check int) "chunk 2 stolen from shard 0" 0 (snd log.(2));
  Alcotest.(check int) "chunk 3 popped from thief's queue" 1 (snd log.(3));
  Alcotest.(check int) "chunk 4 stolen from shard 0" 0 (snd log.(4));
  let d field = field st.(0) - field base.(0) and d1 field = field st.(1) - field base.(1) in
  Alcotest.(check int) "victim counts taken + migrated + lone steal" 3
    (d (fun s -> s.Shard.s_stolen_from));
  Alcotest.(check int) "thief counts taken + migrated + lone steal" 3
    (d1 (fun s -> s.Shard.s_steals));
  Alcotest.(check int) "migrated chunk ran as a local pop" 1
    (d1 (fun s -> s.Shard.s_run_local));
  Alcotest.(check int) "pinned worker 0 stole nothing" 0 (d (fun s -> s.Shard.s_steals));
  Alcotest.(check int) "nothing left shard 1's queue" 0
    (d1 (fun s -> s.Shard.s_stolen_from))

(* ------------------------------------------------------------------ *)
(* Facade                                                              *)
(* ------------------------------------------------------------------ *)

let test_align_exn_raises () =
  let strict = Anyseq.Config.make ~scheme:Scheme.paper_linear () in
  match Anyseq.align_exn ~config:strict ~query:"ACGU" ~subject:"ACGT" with
  | _ -> Alcotest.fail "expected Error.Error"
  | exception Error.Error (Error.Bad_sequence _) -> ()

let test_facade_shares_default_scheme () =
  (* Cache identity depends on the default schemes being one value. *)
  Alcotest.(check bool) "physically equal" true
    (Anyseq.default_scheme == Anyseq.Config.default.Anyseq.Config.scheme)

let test_wrappers_still_paper_compatible () =
  let r = Anyseq.construct_global_alignment ~query:"ACGT" ~subject:"ACGT" () in
  Alcotest.(check int) "score" 8 r.Anyseq.score;
  Alcotest.(check bool) "traceback present" true (r.Anyseq.alignment <> None);
  Alcotest.(check int) "score-only wrapper" 8
    (Anyseq.global_alignment_score ~query:"ACGT" ~subject:"ACGT" ())

let () =
  Alcotest.run "runtime"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters, gauges, histograms" `Quick test_metrics_basics;
          Alcotest.test_case "prometheus round-trip" `Quick test_metrics_prometheus;
          Alcotest.test_case "kind mismatch" `Quick test_metrics_kind_mismatch;
        ] );
      ( "native kernels",
        [
          native_matches_engine;
          native_traceback_matches_engine;
          Alcotest.test_case "long pairs via Hirschberg" `Quick
            test_native_traceback_long_pairs;
          Alcotest.test_case "steady-state allocation budget" `Quick
            test_steady_state_allocation_budget;
        ] );
      ( "spec cache",
        [
          Alcotest.test_case "hits and misses" `Quick test_cache_hits_and_misses;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "name collision" `Quick test_cache_name_collision;
          Alcotest.test_case "verify-flag invalidation" `Quick test_cache_verify_invalidation;
        ] );
      ( "service",
        [
          Alcotest.test_case "backpressure" `Quick test_service_backpressure;
          Alcotest.test_case "timeout" `Quick test_service_timeout;
          Alcotest.test_case "bad sequence" `Quick test_service_bad_sequence;
          Alcotest.test_case "overflow parity" `Quick test_overflow_bound_parity;
          Alcotest.test_case "mixed configs" `Quick test_mixed_configs_one_batch;
          Alcotest.test_case "Myers tier bit-identical" `Quick test_myers_tier_differential;
          Alcotest.test_case "Myers tier certificate gating" `Quick test_myers_tier_gating;
          Alcotest.test_case "banded tier bit-identical" `Quick test_banded_tier_differential;
          Alcotest.test_case "banded tier cutoff + mixed batch" `Quick
            test_banded_tier_cutoff_and_mix;
          Alcotest.test_case "tier counters in Prometheus" `Quick
            test_tier_counters_prometheus;
          Alcotest.test_case "wire round-trip hits fast tier" `Quick
            test_wire_unit_cost_round_trip;
          Alcotest.test_case "drain gate" `Quick test_service_drain;
          Alcotest.test_case "drain waits for in-flight" `Slow test_service_drain_waits_for_in_flight;
          Alcotest.test_case "concurrent submitters" `Slow test_concurrent_submitters;
        ] );
      ( "sharded runtime",
        [
          Alcotest.test_case "determinism at shards 1/2/4" `Slow test_shard_determinism;
          Alcotest.test_case "submit/await" `Quick test_submit_await;
          Alcotest.test_case "shard pool units" `Quick test_shard_pool_units;
          Alcotest.test_case "backpressure isolation" `Quick
            test_shard_backpressure_isolation;
          Alcotest.test_case "workers steal" `Slow test_shard_workers_steal;
        ] );
      ( "api contract",
        [
          batch_equals_sequential;
          Alcotest.test_case "align_exn raises" `Quick test_align_exn_raises;
          Alcotest.test_case "shared default scheme" `Quick test_facade_shares_default_scheme;
          Alcotest.test_case "paper wrappers" `Quick test_wrappers_still_paper_compatible;
        ] );
    ]
