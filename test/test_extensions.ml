(* Tests for the extension features: generalized ends-free policies, Myers'
   bit-parallel edit distance, and the database-search API. *)

module Sequence = Anyseq_bio.Sequence
module Alphabet = Anyseq_bio.Alphabet
module Alignment = Anyseq_bio.Alignment
module Gaps = Anyseq_bio.Gaps
module Scheme = Anyseq_scoring.Scheme
module T = Anyseq_core.Types
module EF = Anyseq_core.Ends_free
module Myers = Anyseq_core.Myers
module Db_search = Anyseq_simd.Db_search
module Rng = Anyseq_util.Rng

let dna = Sequence.of_string Alphabet.dna4

(* Brute-force ends-free oracle: dense Gotoh with per-spec borders and
   final-cell rule. *)
let brute scheme (spec : EF.spec) q s =
  let n = Sequence.length q and m = Sequence.length s in
  let sigma = Scheme.subst_score scheme in
  let go = Gaps.open_cost scheme.Scheme.gap and ge = Gaps.extend_cost scheme.Scheme.gap in
  let h = Array.make_matrix (n + 1) (m + 1) T.neg_inf in
  let e = Array.make_matrix (n + 1) (m + 1) T.neg_inf in
  let f = Array.make_matrix (n + 1) (m + 1) T.neg_inf in
  h.(0).(0) <- 0;
  for i = 1 to n do
    h.(i).(0) <- (if spec.EF.skip_query_prefix then 0 else -(go + (i * ge)));
    e.(i).(0) <- h.(i).(0)
  done;
  for j = 1 to m do
    h.(0).(j) <- (if spec.EF.skip_subject_prefix then 0 else -(go + (j * ge)));
    f.(0).(j) <- h.(0).(j)
  done;
  for i = 1 to n do
    for j = 1 to m do
      let ev = max (e.(i - 1).(j) - ge) (h.(i - 1).(j) - go - ge) in
      let fv = max (f.(i).(j - 1) - ge) (h.(i).(j - 1) - go - ge) in
      e.(i).(j) <- ev;
      f.(i).(j) <- fv;
      h.(i).(j) <-
        max (h.(i - 1).(j - 1) + sigma (Sequence.get q (i - 1)) (Sequence.get s (j - 1)))
          (max ev fv)
    done
  done;
  let best = ref T.neg_inf in
  for i = 0 to n do
    for j = 0 to m do
      if
        (i = n || spec.EF.skip_query_suffix)
        && (j = m || spec.EF.skip_subject_suffix)
        && (i = n || j = m)
        && h.(i).(j) > !best
      then best := h.(i).(j)
    done
  done;
  !best

let all_specs =
  [
    EF.global; EF.ends_free; EF.query_contained; EF.subject_contained;
    EF.dovetail_query_first; EF.dovetail_subject_first;
    { EF.skip_query_prefix = true; skip_query_suffix = false;
      skip_subject_prefix = false; skip_subject_suffix = true };
  ]

let pair_gen max_len =
  QCheck2.Gen.map
    (fun seed ->
      let rng = Rng.create ~seed in
      Helpers.random_pair rng ~max_len)
    QCheck2.Gen.nat

let ends_free_matches_brute =
  Helpers.qtest ~count:150 "ends_free score = brute-force oracle (all specs)"
    QCheck2.Gen.(
      tup3 (pair_gen 30) (oneofl all_specs)
        (oneofl [ Scheme.paper_linear; Scheme.paper_affine ]))
    (fun ((q, s), spec, scheme) ->
      (EF.score_only scheme spec ~query:(Sequence.view q) ~subject:(Sequence.view s))
        .T.score = brute scheme spec q s)

let ends_free_align_consistent =
  Helpers.qtest ~count:120 "ends_free alignment scores and validates"
    QCheck2.Gen.(tup2 (pair_gen 30) (oneofl all_specs))
    (fun ((q, s), spec) ->
      let scheme = Scheme.paper_affine in
      let a = EF.align scheme spec ~query:q ~subject:s in
      a.Alignment.score = brute scheme spec q s
      && Result.is_ok
           (Alignment.rescore ~subst:scheme.Scheme.subst ~gap:scheme.Scheme.gap ~query:q
              ~subject:s a))

let ends_free_mode_correspondence =
  Helpers.qtest ~count:100 "ends_free global/ends_free = the classic modes"
    (pair_gen 35)
    (fun (q, s) ->
      let scheme = Scheme.paper_affine in
      let qv = Sequence.view q and sv = Sequence.view s in
      (EF.score_only scheme EF.global ~query:qv ~subject:sv).T.score
      = Helpers.reference_score scheme T.Global ~query:q ~subject:s
      && (EF.score_only scheme EF.ends_free ~query:qv ~subject:sv).T.score
         = Helpers.reference_score scheme T.Semiglobal ~query:q ~subject:s)

let ends_free_freedom_monotone =
  Helpers.qtest ~count:100 "freeing an end never lowers the score"
    (pair_gen 30)
    (fun (q, s) ->
      let scheme = Scheme.paper_linear in
      let qv = Sequence.view q and sv = Sequence.view s in
      let score spec = (EF.score_only scheme spec ~query:qv ~subject:sv).T.score in
      score EF.global <= score EF.dovetail_query_first
      && score EF.dovetail_query_first <= score EF.ends_free
      && score EF.global <= score EF.query_contained
      && score EF.query_contained <= score EF.ends_free)

let test_ends_free_containment () =
  (* A read inside a window: query_contained finds the exact placement. *)
  let window = dna "TTTTTTACGTACGTTTTTT" in
  let read = dna "ACGTACGT" in
  let a = EF.align Scheme.paper_affine EF.query_contained ~query:read ~subject:window in
  Alcotest.(check int) "perfect score" 16 a.Alignment.score;
  Alcotest.(check int) "subject start" 6 a.Alignment.subject_start;
  Alcotest.(check int) "subject end" 14 a.Alignment.subject_end;
  Alcotest.(check int) "query fully aligned" 8 (a.Alignment.query_end - a.Alignment.query_start)

let test_ends_free_dovetail () =
  (* query = ...XY, subject = XY...: suffix of query overlaps prefix of
     subject. *)
  let query = dna "GGGGGACGTACGT" and subject = dna "ACGTACGTCCCCC" in
  let a = EF.align Scheme.paper_linear EF.dovetail_query_first ~query ~subject in
  Alcotest.(check int) "overlap score" 16 a.Alignment.score;
  Alcotest.(check int) "query start (prefix skipped)" 5 a.Alignment.query_start;
  Alcotest.(check int) "query end (anchored)" 13 a.Alignment.query_end;
  Alcotest.(check int) "subject start (anchored)" 0 a.Alignment.subject_start

(* ------------------------------------------------------------------ *)
(* Myers                                                               *)
(* ------------------------------------------------------------------ *)

let myers_matches_dp =
  Helpers.qtest ~count:250 "Myers distance = unit-cost DP (incl. multi-word)"
    QCheck2.Gen.(map (fun seed ->
        let rng = Rng.create ~seed in
        (* occasionally exceed one 64-bit word *)
        let n = if Rng.int rng 5 = 0 then 64 + Rng.int rng 140 else Rng.int rng 64 in
        (Helpers.random_dna rng ~len:n, Helpers.random_dna rng ~len:(Rng.int rng 80))) nat)
    (fun (q, s) ->
      Myers.distance q s
      = -Helpers.reference_score Myers.unit_scheme T.Global ~query:q ~subject:s)

let myers_search_matches_ends_free =
  Helpers.qtest ~count:200 "Myers search = subject-flanks-free DP"
    QCheck2.Gen.(map (fun seed ->
        let rng = Rng.create ~seed in
        let n = 1 + Rng.int rng 90 in
        (Helpers.random_dna rng ~len:n, Helpers.random_dna rng ~len:(Rng.int rng 120))) nat)
    (fun (pattern, text) ->
      let d, pos = Myers.search ~pattern ~text in
      let expected =
        -(EF.score_only Myers.unit_scheme
            { EF.skip_query_prefix = false; skip_query_suffix = false;
              skip_subject_prefix = true; skip_subject_suffix = true }
            ~query:(Sequence.view pattern) ~subject:(Sequence.view text))
           .T.score
      in
      d = expected && pos >= 0 && pos <= Sequence.length text)

let test_myers_hand_cases () =
  Alcotest.(check int) "identical" 0 (Myers.distance (dna "ACGT") (dna "ACGT"));
  Alcotest.(check int) "substitution" 1 (Myers.distance (dna "ACGT") (dna "ACCT"));
  Alcotest.(check int) "indel" 1 (Myers.distance (dna "ACGT") (dna "ACT"));
  Alcotest.(check int) "empty vs x" 4 (Myers.distance (dna "") (dna "ACGT"));
  Alcotest.(check int) "x vs empty" 4 (Myers.distance (dna "ACGT") (dna ""));
  Alcotest.(check int) "kitten-style" 2 (Myers.distance (dna "ACGTACGT") (dna "AGGTACG"))

let test_myers_search_positions () =
  let pattern = dna "ACGT" in
  let text = dna "TTTTACGTTTTTACCTTT" in
  let d, pos = Myers.search ~pattern ~text in
  Alcotest.(check int) "exact hit distance" 0 d;
  Alcotest.(check int) "earliest exact end" 8 pos;
  let hits = Myers.occurrences ~pattern ~text ~k:1 in
  Alcotest.(check bool) "exact end present" true (List.mem_assoc 8 hits);
  Alcotest.(check bool) "1-error end present (ACCT)" true (List.mem_assoc 16 hits);
  List.iter (fun (_, d) -> Alcotest.(check bool) "within k" true (d <= 1)) hits

let test_myers_empty_pattern () =
  Alcotest.(check (pair int int)) "empty pattern" (0, 0)
    (Myers.search ~pattern:(dna "") ~text:(dna "ACGT"))

let myers_long_pattern_words =
  Helpers.qtest ~count:40 "multi-word boundary lengths (63..130)"
    QCheck2.Gen.(map (fun seed ->
        let rng = Rng.create ~seed in
        let n = 63 + Rng.int rng 68 in
        let q = Helpers.random_dna rng ~len:n in
        let s = Anyseq_seqio.Genome_gen.mutate rng q in
        (q, s)) nat)
    (fun (q, s) ->
      Myers.distance q s
      = -Helpers.reference_score Myers.unit_scheme T.Global ~query:q ~subject:s)

(* exact unit-cost distance from the general DP — the oracle for the
   banded suite *)
let exact_distance q s =
  -Helpers.reference_score Myers.unit_scheme T.Global ~query:q ~subject:s

(* banded/full/upto agreement on one pair: full sweep = banded = DP, and
   distance_upto behaves as a characteristic function of d ≤ k across
   the interesting bounds (0, d-1, d, d+1, ∞) *)
let upto_consistent q s =
  let d = exact_distance q s in
  let n = Sequence.length q and m = Sequence.length s in
  let upto k = Myers.distance_upto ~k q s in
  Myers.distance q s = d
  && Myers.distance_full q s = d
  && upto (n + m) = Some d
  && upto d = Some d
  && upto (d + 1) = Some d
  && (d = 0 || upto (d - 1) = None)
  && upto 0 = (if d = 0 then Some 0 else None)
  && upto (-1) = None

let myers_upto_matches_dp =
  Helpers.qtest ~count:250 "distance_upto = characteristic fn of DP distance"
    QCheck2.Gen.(map (fun seed ->
        let rng = Rng.create ~seed in
        (* mix multi-word patterns and very unequal lengths *)
        let n = if Rng.int rng 4 = 0 then 64 + Rng.int rng 140 else Rng.int rng 64 in
        let q = Helpers.random_dna rng ~len:n in
        let s =
          if Rng.int rng 2 = 0 then Anyseq_seqio.Genome_gen.mutate rng q
          else Helpers.random_dna rng ~len:(Rng.int rng 100)
        in
        (q, s)) nat)
    (fun (q, s) -> upto_consistent q s)

let myers_upto_band_edges =
  (* lengths that straddle the 62-bit block boundary, against both a
     light mutation (band stays narrow) and an unrelated sequence (band
     collapses) *)
  Helpers.qtest ~count:60 "distance_upto at block-boundary lengths (61,62,63,124)"
    QCheck2.Gen.(map (fun seed ->
        let rng = Rng.create ~seed in
        let n = List.nth [ 61; 62; 63; 124 ] (Rng.int rng 4) in
        let q = Helpers.random_dna rng ~len:n in
        let near = Anyseq_seqio.Genome_gen.mutate rng q in
        let far = Helpers.random_dna rng ~len:n in
        (q, near, far)) nat)
    (fun (q, near, far) -> upto_consistent q near && upto_consistent q far)

let test_myers_upto_degenerate () =
  let e = dna "" and x = dna "ACGT" in
  Alcotest.(check (option int)) "empty/empty" (Some 0) (Myers.distance_upto ~k:0 e e);
  Alcotest.(check (option int)) "empty query, k >= m" (Some 4)
    (Myers.distance_upto ~k:4 e x);
  Alcotest.(check (option int)) "empty query, k < m" None
    (Myers.distance_upto ~k:3 e x);
  Alcotest.(check (option int)) "empty subject, k >= n" (Some 4)
    (Myers.distance_upto ~k:9 x e);
  Alcotest.(check (option int)) "empty subject, k < n" None
    (Myers.distance_upto ~k:3 x e);
  Alcotest.(check (option int)) "negative k" None (Myers.distance_upto ~k:(-1) x x);
  Alcotest.(check (option int)) "identical at k=0" (Some 0)
    (Myers.distance_upto ~k:0 x x);
  Alcotest.(check (option int)) "length gap alone exceeds k" None
    (Myers.distance_upto ~k:2 (dna "ACGTACG") x)

(* ------------------------------------------------------------------ *)
(* Db_search                                                           *)
(* ------------------------------------------------------------------ *)

let test_db_search_top_k () =
  let rng = Rng.create ~seed:91 in
  let query = Helpers.random_dna rng ~len:60 in
  let subjects =
    Array.init 40 (fun i ->
        if i = 17 then query (* a perfect hit *)
        else Helpers.random_dna rng ~len:(55 + (i mod 4)))
  in
  let hits = Db_search.top_k ~lanes:8 Scheme.paper_linear T.Local ~query ~subjects ~k:3 in
  Alcotest.(check int) "k hits" 3 (List.length hits);
  let best = List.hd hits in
  Alcotest.(check int) "perfect subject wins" 17 best.Db_search.index;
  Alcotest.(check int) "perfect score" 120 best.Db_search.ends.T.score;
  (* sorted descending *)
  let scores = List.map (fun h -> h.Db_search.ends.T.score) hits in
  Alcotest.(check (list int)) "descending" (List.sort (fun a b -> compare b a) scores) scores

let db_search_matches_scalar =
  Helpers.qtest ~count:25 "db_search = per-pair scalar scores"
    QCheck2.Gen.(tup2 (map (fun seed -> Rng.create ~seed) nat) (oneofl Helpers.modes_under_test))
    (fun (rng, mode) ->
      let query = Helpers.random_dna rng ~len:(1 + Rng.int rng 40) in
      let subjects = Array.init 20 (fun _ -> Helpers.random_dna rng ~len:(1 + Rng.int rng 40)) in
      let scores = Db_search.score_all ~lanes:4 Scheme.paper_affine mode ~query ~subjects in
      Array.for_all2
        (fun got s ->
          got
          = Anyseq_core.Dp_linear.score_only Scheme.paper_affine mode
              ~query:(Sequence.view query) ~subject:(Sequence.view s))
        scores subjects)

let test_db_search_k_edge_cases () =
  let query = dna "ACGT" in
  let subjects = [| dna "ACGT"; dna "TTTT" |] in
  Alcotest.(check int) "k=0" 0
    (List.length (Db_search.top_k Scheme.paper_linear T.Local ~query ~subjects ~k:0));
  Alcotest.(check int) "k beyond size" 2
    (List.length (Db_search.top_k Scheme.paper_linear T.Local ~query ~subjects ~k:10))

let () =
  Alcotest.run "extensions"
    [
      ( "ends_free",
        [
          ends_free_matches_brute;
          ends_free_align_consistent;
          ends_free_mode_correspondence;
          ends_free_freedom_monotone;
          Alcotest.test_case "containment" `Quick test_ends_free_containment;
          Alcotest.test_case "dovetail" `Quick test_ends_free_dovetail;
        ] );
      ( "myers",
        [
          myers_matches_dp;
          myers_search_matches_ends_free;
          Alcotest.test_case "hand cases" `Quick test_myers_hand_cases;
          Alcotest.test_case "search positions" `Quick test_myers_search_positions;
          Alcotest.test_case "empty pattern" `Quick test_myers_empty_pattern;
          myers_long_pattern_words;
          myers_upto_matches_dp;
          myers_upto_band_edges;
          Alcotest.test_case "upto degenerate" `Quick test_myers_upto_degenerate;
        ] );
      ( "db_search",
        [
          Alcotest.test_case "top_k" `Quick test_db_search_top_k;
          db_search_matches_scalar;
          Alcotest.test_case "k edge cases" `Quick test_db_search_k_edge_cases;
        ] );
    ]
