(* band-gate: tier-1 gate for the Ukkonen-banded Myers engine, run by
   `dune build @band-gate`.

   The banded tier is an acceleration, never an approximation. Two
   assertion groups enforce that:

   1. {b Engine bit-identity.} Across a sweep of lengths straddling the
      62-bit word boundaries (61/62/63/124) plus random multi-word pairs,
      the banded iterative-deepening [Myers.distance], the full-sweep
      [Myers.distance_full] and the dense [Dp_linear] reference must
      agree exactly, and [Myers.distance_upto ~k] must answer [Some d]
      precisely when [k >= d] and [None] below it — the band may only
      ever prune rows that cannot hold the optimum.

   2. {b Cutoff-driven network ≡ uncapped network, byte for byte.} The
      similarity-network pipeline on star-family input, once with the
      score/identity/top-k floors converted into per-pair distance caps
      ([cutoff = true]) and once aligning every candidate to completion
      ([cutoff = false]), must write byte-identical edge TSVs — and the
      capped run must actually cut pairs off ([pairs_cutoff > 0]), so
      the gate cannot silently pass with the caps disabled. *)

module Rng = Anyseq_util.Rng
module Sequence = Anyseq_bio.Sequence
module Alphabet = Anyseq_bio.Alphabet
module Scheme = Anyseq_scoring.Scheme
module T = Anyseq_core.Types
module Myers = Anyseq_core.Myers
module Dp_linear = Anyseq_core.Dp_linear
module Pipeline = Anyseq.Pipeline
module Genome_gen = Anyseq.Genome_gen

let failures = ref 0

let check what ok =
  if not ok then begin
    incr failures;
    Printf.eprintf "FAIL: %s\n" what
  end

(* ---- 1: engine bit-identity ---- *)

let dna = Sequence.of_string Alphabet.dna4

let reference_distance q s =
  let qv = Sequence.view (dna q) and sv = Sequence.view (dna s) in
  -(Dp_linear.score_only Myers.unit_scheme T.Global ~query:qv ~subject:sv).T.score

let random_dna rng len =
  String.init len (fun _ -> "ACGT".[Rng.int rng 4])

let mutate rng s rate =
  String.concat ""
    (List.filter_map
       (fun c ->
         if Rng.float rng 1.0 < rate then
           match Rng.int rng 3 with
           | 0 -> None (* deletion *)
           | 1 -> Some (Printf.sprintf "%c%c" "ACGT".[Rng.int rng 4] c) (* insertion *)
           | _ -> Some (String.make 1 "ACGT".[Rng.int rng 4]) (* substitution *)
         else Some (String.make 1 c))
       (List.init (String.length s) (String.get s)))

let engine_identity () =
  let rng = Rng.create ~seed:20260808 in
  let pairs = ref [] in
  (* word-boundary lengths, near pairs (small d, deep band pruning) and
     far pairs (random vs random, d ~ length) *)
  List.iter
    (fun n ->
      let q = random_dna rng n in
      pairs := (q, mutate rng q 0.05) :: (q, random_dna rng n) :: !pairs)
    [ 61; 62; 63; 124; 200 ];
  (* random mixed lengths, including empty and length-gapped *)
  for _ = 1 to 40 do
    let q = random_dna rng (Rng.int rng 180) in
    pairs := (q, mutate rng q 0.1) :: !pairs
  done;
  pairs := ("", "") :: ("", "ACGT") :: ("ACGTACGT", "") :: !pairs;
  let checked = ref 0 in
  List.iter
    (fun (q, s) ->
      let d_ref = reference_distance q s in
      let qs = dna q and ss = dna s in
      check "banded distance = Dp_linear" (Myers.distance qs ss = d_ref);
      check "full-sweep distance = Dp_linear" (Myers.distance_full qs ss = d_ref);
      check "upto at d succeeds" (Myers.distance_upto ~k:d_ref qs ss = Some d_ref);
      check "upto above d succeeds" (Myers.distance_upto ~k:(d_ref + 1) qs ss = Some d_ref);
      check "upto below d refuses"
        (d_ref = 0 || Myers.distance_upto ~k:(d_ref - 1) qs ss = None);
      incr checked)
    !pairs;
  !checked

(* ---- 2: cutoff-driven network byte-identity ---- *)

let families = 6
let members = 32
let len = 128

let star_families ~seed =
  let rng = Rng.create ~seed in
  let div = { Genome_gen.snp_rate = 0.02; indel_rate = 0.002; indel_mean_len = 2.0 } in
  let out =
    Array.make (families * members) ("", Sequence.of_string Alphabet.dna4 "A")
  in
  for f = 0 to families - 1 do
    let root = Genome_gen.generate rng ~len () in
    for m = 0 to members - 1 do
      let s = if m = 0 then root else Genome_gen.mutate rng ~divergence:div root in
      out.((f * members) + m) <- (Printf.sprintf "fam%d_%03d" f m, s)
    done
  done;
  out

let run_once ~tag ~cutoff seqs =
  let out =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "anyseq-bandgate-%d-%s.tsv" (Unix.getpid ()) tag)
  in
  let params =
    {
      Pipeline.default_params with
      scheme = Anyseq.Scheme.unit_cost;
      (* brute force: the minimizer prefilter would drop the divergent
         cross-family pairs before alignment, and those are exactly the
         pairs the distance caps must cut off *)
      min_shared = 0;
      min_ident = 0.7;
      top_k = 4;
      cutoff;
    }
  in
  let service = Anyseq.Service.create ~shards:1 ~capacity:4096 () in
  let r =
    Fun.protect
      ~finally:(fun () -> Anyseq.Service.shutdown service)
      (fun () -> Pipeline.run ~service ~out params (Pipeline.Seqs seqs))
  in
  match r with
  | Ok rep -> (out, rep)
  | Error msg ->
      Printf.eprintf "FAIL: %s run: %s\n" tag msg;
      exit 1

let read_bytes path = In_channel.with_open_text path In_channel.input_all

let () =
  let n_pairs = engine_identity () in
  let seqs = star_families ~seed:808 in
  let cut_out, cut = run_once ~tag:"cutoff" ~cutoff:true seqs in
  let unc_out, unc = run_once ~tag:"uncapped" ~cutoff:false seqs in
  Fun.protect
    ~finally:(fun () -> List.iter Sys.remove [ cut_out; unc_out ])
    (fun () ->
      check "caps actually fired" (cut.Pipeline.pairs_cutoff > 0);
      check "uncapped run has no cutoffs" (unc.Pipeline.pairs_cutoff = 0);
      check "edges exist" (cut.Pipeline.edges > 0);
      check "cutoff edge list ≡ uncapped edge list"
        (read_bytes cut_out = read_bytes unc_out);
      check "both runs resolve the same pair count"
        (cut.Pipeline.pairs_aligned + cut.Pipeline.pairs_cutoff
        = unc.Pipeline.pairs_aligned + unc.Pipeline.pairs_cutoff));
  if !failures = 0 then begin
    Printf.printf
      "band-gate OK: %d pairs banded ≡ full ≡ Dp_linear; network with cutoffs ≡ without \
       (%d aligned + %d cut off, %d edges)\n"
      n_pairs cut.Pipeline.pairs_aligned cut.Pipeline.pairs_cutoff cut.Pipeline.edges;
    exit 0
  end
  else begin
    Printf.eprintf "band-gate: %d failure(s)\n" !failures;
    exit 1
  end
