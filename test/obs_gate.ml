(* obs-gate: tier-1 check of end-to-end observability, run by
   `dune build @obs-gate`.

   One traced pipelined load through a real two-shard server on a Unix
   socket, with the admin endpoint up on a loopback TCP port. Assertions:

   1. {b Stitched cross-process trace.} Every client-minted trace id on a
      [client.request] span reappears on a [server.request] span (and on
      the [service.exec] spans that did the work) — the wire carried the
      context and the server adopted it, so a Chrome export of both sides
      renders one stitched trace.

   2. {b Stage decomposition is complete.} Each of the five
      [server/stage_*_us] histograms scraped from [/metrics] holds
      exactly [requests_replied] observations — every replied request was
      stamped at every stage, none double-counted.

   3. {b Per-shard gauges are consistent.} The labeled
      [anyseq_runtime_shard_*] series exposed by [/metrics] sum to the
      same totals [Service.shard_stats] reports at scrape time.

   4. {b The flight recorder saw the flight.} The ring recorded every
      replied request (load is below its capacity here) and
      [/debug/flight] serves them as parsable JSON. *)

module Rng = Anyseq_util.Rng
module Service = Anyseq.Service
module Metrics = Anyseq.Metrics
module Wire = Anyseq.Wire
module Addr = Anyseq.Addr
module Client = Anyseq.Client
module Server = Anyseq.Server
module Admin = Anyseq.Admin
module Flight = Anyseq.Flight
module Jsonv = Anyseq.Jsonv
module Trace = Anyseq.Trace

let failures = ref 0

let check what ok =
  if not ok then begin
    incr failures;
    Printf.eprintf "FAIL: %s\n" what
  end

let checkf what fmt = Printf.ksprintf (fun msg -> check (what ^ ": " ^ msg)) fmt

let contains ~affix s =
  let la = String.length affix and ls = String.length s in
  let rec at i = i + la <= ls && (String.sub s i la = affix || at (i + 1)) in
  at 0

let random_pairs ~seed ~count ~max_len =
  let rng = Rng.create ~seed in
  Array.init count (fun _ ->
      let dna n = String.init n (fun _ -> "ACGT".[Rng.int rng 4]) in
      (dna (1 + Rng.int rng max_len), dna (1 + Rng.int rng max_len)))

let n_requests = 200

let () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "anyseq-obs-gate-%d.sock" (Unix.getpid ()))
  in
  let addr = Addr.Unix_socket path in
  let admin_addr =
    match Addr.parse "tcp:127.0.0.1:0" with Ok a -> a | Error m -> failwith m
  in
  let cfg =
    { (Server.default_config ~addrs:[ addr ] ~shards:2 ~admin:admin_addr ()) with
      Server.max_batch = 16 }
  in
  Trace.enable ();
  (match Server.start cfg with
  | Error msg -> checkf "server" "start: %s" msg false
  | Ok srv ->
      let admin =
        match Server.admin_address srv with
        | Some a -> a
        | None -> failwith "admin listener missing"
      in
      (* ---- traced load ---- *)
      let pairs = random_pairs ~seed:31 ~count:n_requests ~max_len:96 in
      let conn = match Client.connect addr with Ok c -> c | Error m -> failwith m in
      (match Client.align_many conn ~window:32 pairs with
      | Error msg -> checkf "load" "%s" msg false
      | Ok results ->
          Array.iteri
            (fun i r ->
              match r with
              | Ok _ -> ()
              | Error e ->
                  checkf "load" "pair %d: %s" i (Client.error_to_string e) false)
            results);
      Client.close conn;
      (* ---- 1: stitched trace ---- *)
      let spans = Trace.spans () in
      let ids_of name =
        List.filter_map
          (fun (s : Trace.span) ->
            if s.Trace.name = name then
              List.find_map
                (function "trace_id", Trace.Str v -> Some v | _ -> None)
                s.Trace.attrs
            else None)
          spans
      in
      let client_ids = ids_of "client.request" in
      let server_ids = ids_of "server.request" in
      let exec_ids = ids_of "service.exec" in
      checkf "trace" "client spans recorded (%d)" (List.length client_ids)
        (client_ids <> []);
      List.iter
        (fun cid ->
          checkf "trace" "server span for id %s" cid (List.mem cid server_ids))
        client_ids;
      (* A batch stamps its first traced request's id down to the chunks
         it dispatches, so exec spans carry a subset of the client ids —
         but every stamped exec id must be a real client id. *)
      check "service.exec spans carry client trace ids" (exec_ids <> []);
      List.iter
        (fun eid ->
          checkf "trace" "exec id %s minted by the client" eid
            (List.mem eid client_ids))
        exec_ids;
      (* ---- 2 + 3: /metrics mid-flight consistency ---- *)
      let metrics_body =
        match Admin.http_get admin "/metrics" with
        | Ok (200, body) -> body
        | Ok (status, _) ->
            checkf "metrics" "HTTP %d" status false;
            ""
        | Error msg ->
            checkf "metrics" "%s" msg false;
            ""
      in
      let m = Server.metrics srv in
      let replied =
        Option.value ~default:0 (Metrics.find m "server/requests_replied")
      in
      check "some requests replied" (replied >= n_requests);
      List.iter
        (fun stage ->
          let name = "server/stage_" ^ stage ^ "_us" in
          (match Metrics.find_hist m name with
          | Some h ->
              checkf "stage" "%s count %d = replied %d" stage (Metrics.hist_count h)
                replied
                (Metrics.hist_count h = replied)
          | None -> checkf "stage" "%s missing" name false);
          checkf "stage" "%s exported" stage
            (contains metrics_body
               ~affix:(Printf.sprintf "anyseq_server_stage_%s_us_bucket" stage)))
        [ "decode"; "admit"; "queue"; "execute"; "reply" ];
      let stats = Service.shard_stats (Server.service srv) in
      check "two shards" (Array.length stats = 2);
      List.iter
        (fun (metric, field) ->
          let expected = Array.fold_left (fun a s -> a + field s) 0 stats in
          let exported =
            Metrics.fold_labeled m ("runtime/" ^ metric) (fun acc _ v -> acc + v) 0
          in
          checkf "shard gauges" "%s exported %d = shard_stats %d" metric exported
            expected (exported = expected);
          checkf "shard gauges" "%s labeled series present" metric
            (contains metrics_body
               ~affix:(Printf.sprintf "anyseq_runtime_%s{shard=\"0\"}" metric)))
        [
          ("shard_jobs", fun s -> s.Service.ss_jobs);
          ("shard_enqueued", fun s -> s.Service.ss_enqueued);
          ("shard_run_local", fun s -> s.Service.ss_run_local);
          ("shard_steals", fun s -> s.Service.ss_steals);
          ("shard_stolen_from", fun s -> s.Service.ss_stolen_from);
        ];
      (* ---- 4: flight recorder ---- *)
      check "flight recorded every reply"
        (Flight.recorded (Server.flight srv) >= n_requests);
      (match Admin.http_get admin "/debug/flight" with
      | Ok (200, body) -> (
          match Jsonv.parse body with
          | Ok doc -> (
              match Option.bind (Jsonv.member "records" doc) Jsonv.to_list with
              | Some records ->
                  checkf "flight" "%d records served" (List.length records)
                    (records <> [])
              | None -> check "flight records array" false)
          | Error msg -> checkf "flight" "unparsable JSON: %s" msg false)
      | Ok (status, _) -> checkf "flight" "HTTP %d" status false
      | Error msg -> checkf "flight" "%s" msg false);
      Server.stop srv);
  Trace.disable ();
  if !failures > 0 then begin
    Printf.printf "obs-gate: %d failure(s)\n" !failures;
    exit 1
  end;
  Printf.printf
    "obs-gate: %d traced requests; stitched spans, 5 stage histograms at count %d, \
     per-shard gauges consistent, flight ring populated\n"
    n_requests n_requests
