module Minimizer = Anyseq_network.Minimizer
module Index = Anyseq_network.Index
module Topk = Anyseq_network.Topk
module Edges = Anyseq_network.Edges
module Components = Anyseq_network.Components
module Pipeline = Anyseq_network.Pipeline
module Alphabet = Anyseq_bio.Alphabet
module Sequence = Anyseq_bio.Sequence
module Genome_gen = Anyseq_seqio.Genome_gen
module Scheme = Anyseq_scoring.Scheme
module Rng = Anyseq_util.Rng

let dna = Alphabet.dna4
let seq s = Sequence.of_string dna s

(* ------------------------------------------------------------------ *)
(* Minimizer                                                           *)
(* ------------------------------------------------------------------ *)

let test_minimizer_short () =
  (* sequences shorter than k have no k-mer, hence an empty sketch *)
  Alcotest.(check int) "empty sequence" 0 (Array.length (Minimizer.sketch (seq "")));
  Alcotest.(check int) "below k" 0
    (Array.length (Minimizer.sketch ~k:11 (seq "ACGTACGTAC")));
  Alcotest.(check bool) "exactly k sketches" true
    (Array.length (Minimizer.sketch ~k:11 (seq "ACGTACGTACG")) > 0)

let test_minimizer_homopolymer () =
  (* a homopolymer run has one distinct k-mer, hence one distinct minimizer *)
  let s = seq (String.make 200 'A') in
  Alcotest.(check int) "one distinct minimizer" 1
    (Array.length (Minimizer.sketch s));
  let t = seq (String.make 64 'G') in
  Alcotest.(check int) "other letter too" 1 (Array.length (Minimizer.sketch t))

let test_minimizer_duplicates () =
  let rng = Rng.create ~seed:11 in
  let s = Genome_gen.generate rng ~len:300 () in
  let a = Minimizer.sketch s and b = Minimizer.sketch s in
  Alcotest.(check bool) "identical sketches" true (a = b);
  Alcotest.(check int) "share everything" (Array.length a) (Minimizer.shared a b)

let test_minimizer_sorted_distinct () =
  let rng = Rng.create ~seed:12 in
  let s = Genome_gen.generate rng ~len:1000 () in
  let a = Minimizer.sketch s in
  Alcotest.(check bool) "non-empty" true (Array.length a > 0);
  for i = 1 to Array.length a - 1 do
    if a.(i - 1) >= a.(i) then Alcotest.failf "not sorted distinct at %d" i
  done

let test_minimizer_validation () =
  let s = seq "ACGTACGTACGTACGT" in
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "k too small" true (bad (fun () -> Minimizer.sketch ~k:1 s));
  Alcotest.(check bool) "k too large" true
    (bad (fun () -> Minimizer.sketch ~k:(Minimizer.max_k + 1) s));
  Alcotest.(check bool) "w < 1" true (bad (fun () -> Minimizer.sketch ~w:0 s))

(* Mutated copies must keep sharing minimizers — the prefilter's whole
   premise — and the inverted index must report exactly the pairs whose
   direct [Minimizer.shared] count clears the threshold. *)
let test_index_matches_pairwise () =
  let rng = Rng.create ~seed:13 in
  let div = { Genome_gen.snp_rate = 0.02; indel_rate = 0.002; indel_mean_len = 2.0 } in
  let seqs =
    Array.init 40 (fun i ->
        if i mod 8 = 0 then Genome_gen.generate rng ~len:240 ()
        else Genome_gen.mutate rng ~divergence:div (Genome_gen.generate rng ~len:240 ()))
  in
  (* families: overwrite members 1..7 of each block with chained mutants *)
  for f = 0 to 4 do
    for m = 1 to 7 do
      seqs.((f * 8) + m) <- Genome_gen.mutate rng ~divergence:div seqs.((f * 8) + m - 1)
    done
  done;
  let sketches = Array.map Minimizer.sketch seqs in
  let min_shared = 3 in
  let expected = Hashtbl.create 64 in
  for j = 0 to Array.length seqs - 1 do
    for i = 0 to j - 1 do
      let c = Minimizer.shared sketches.(i) sketches.(j) in
      if c >= min_shared then Hashtbl.replace expected (i, j) c
    done
  done;
  Alcotest.(check bool) "families produce candidates" true (Hashtbl.length expected > 0);
  let idx = Index.create () in
  let reported = Hashtbl.create 64 in
  Array.iteri
    (fun j sk ->
      let id = Index.add idx sk ~min_shared ~f:(fun i c -> Hashtbl.replace reported (i, j) c) in
      Alcotest.(check int) "ids assigned in order" j id)
    sketches;
  Alcotest.(check int) "same candidate count" (Hashtbl.length expected)
    (Hashtbl.length reported);
  Hashtbl.iter
    (fun (i, j) c ->
      match Hashtbl.find_opt reported (i, j) with
      | Some c' when c' = c -> ()
      | Some c' -> Alcotest.failf "pair (%d,%d): shared %d reported %d" i j c c'
      | None -> Alcotest.failf "pair (%d,%d) missing from index candidates" i j)
    expected

let test_index_brute_force_mode () =
  let rng = Rng.create ~seed:14 in
  let sketches = Array.init 10 (fun _ -> Minimizer.sketch (Genome_gen.generate rng ~len:150 ())) in
  let idx = Index.create () in
  let pairs = ref 0 in
  Array.iter (fun sk -> ignore (Index.add idx sk ~min_shared:0 ~f:(fun _ _ -> incr pairs))) sketches;
  Alcotest.(check int) "min_shared <= 0 reports every pair" 45 !pairs

(* ------------------------------------------------------------------ *)
(* Topk                                                                *)
(* ------------------------------------------------------------------ *)

let test_topk_order_independent () =
  let hits =
    [ (3, 10); (1, 10); (7, 12); (2, 5); (9, 12); (4, 8); (5, 10); (0, 3) ]
    |> List.map (fun (partner, score) -> { Topk.partner; score; ident = 0.9 })
  in
  let fill order =
    let t = Topk.create ~k:4 in
    let evictions = List.fold_left (fun n h -> if Topk.add t h then n + 1 else n) 0 order in
    (Topk.to_sorted t, evictions)
  in
  let a, ea = fill hits in
  let b, eb = fill (List.rev hits) in
  Alcotest.(check bool) "same contents any order" true (a = b);
  Alcotest.(check int) "same evictions" ea eb;
  Alcotest.(check int) "bounded" 4 (Array.length a);
  (* best first: score desc, partner asc on ties *)
  let expect = [| (7, 12); (9, 12); (1, 10); (3, 10) |] in
  Array.iteri
    (fun i h ->
      let p, s = expect.(i) in
      Alcotest.(check int) (Printf.sprintf "slot %d partner" i) p h.Topk.partner;
      Alcotest.(check int) (Printf.sprintf "slot %d score" i) s h.Topk.score)
    a

(* ------------------------------------------------------------------ *)
(* Edges                                                               *)
(* ------------------------------------------------------------------ *)

let test_edges_spill_merge () =
  let tmp = Filename.get_temp_dir_name () in
  let out = Filename.temp_file "anyseq_test_edges" ".tsv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove out)
    (fun () ->
      (* tiny buffer: force several spill runs; add each edge twice (the
         pipeline records from both endpoints) in scrambled order *)
      let w = Edges.create ~buffer:8 ~tmp_dir:tmp () in
      let edges =
        List.init 30 (fun i ->
            { Edges.a = i mod 6; b = 6 + (i mod 24); score = 100 - i; ident = 0.75; span = 50 + i })
      in
      let scrambled = List.rev edges @ edges in
      List.iter (Edges.add w) scrambled;
      Alcotest.(check bool) "spilled" true (Edges.runs w > 0);
      let seen = ref [] in
      let st = Edges.finish w ~out ~name:(Printf.sprintf "s%d") ~f:(fun e -> seen := e :: !seen) in
      let distinct =
        List.sort_uniq compare (List.map (fun e -> (e.Edges.a, e.Edges.b)) edges)
      in
      Alcotest.(check int) "duplicates merged" (List.length distinct) st.Edges.written;
      Alcotest.(check int) "duplicate count" (2 * List.length edges - List.length distinct)
        st.Edges.duplicates;
      Alcotest.(check bool) "spilled runs reported" true (st.Edges.spilled_runs > 0);
      Alcotest.(check int) "hook saw every written edge" st.Edges.written (List.length !seen);
      (* file is sorted by (a, b) index pair and one line per edge *)
      let lines = In_channel.with_open_text out In_channel.input_lines in
      Alcotest.(check int) "line count" st.Edges.written (List.length lines);
      let keys =
        List.rev_map (fun e -> (e.Edges.a, e.Edges.b)) !seen
      in
      Alcotest.(check bool) "hook order sorted" true (keys = List.sort compare keys);
      (* no stray run files of ours left behind (pid-scoped names: files
         from other processes sharing the temp dir don't count) *)
      let prefix = Printf.sprintf "anyseq-net-run-%d-" (Unix.getpid ()) in
      Array.iter
        (fun f ->
          if String.length f >= String.length prefix
             && String.sub f 0 (String.length prefix) = prefix
          then Alcotest.failf "run file %s not cleaned up" f)
        (Sys.readdir tmp))

(* ------------------------------------------------------------------ *)
(* Components                                                          *)
(* ------------------------------------------------------------------ *)

let test_components () =
  let c = Components.create 10 in
  Components.union c 0 1;
  Components.union c 1 2;
  Components.union c 5 6;
  Components.union c 0 2 (* redundant union: same component *);
  let s = Components.summarize c in
  Alcotest.(check int) "nodes" 10 s.Components.nodes;
  Alcotest.(check int) "edges" 4 s.Components.edges;
  Alcotest.(check int) "components" 7 s.Components.components;
  Alcotest.(check int) "clusters" 2 s.Components.clusters;
  Alcotest.(check int) "singletons" 5 s.Components.singletons;
  Alcotest.(check int) "largest" 3 s.Components.largest;
  (* representative is the smallest member; sizes desc then rep asc *)
  Alcotest.(check bool) "size table" true
    (Array.to_list s.Components.sizes
    |> List.filter (fun (_, n) -> n > 1)
    |> ( = ) [ (0, 3); (5, 2) ]);
  Alcotest.(check bool) "histogram" true
    (List.mem (1, 5) (Components.size_histogram s))

(* ------------------------------------------------------------------ *)
(* Pipeline end to end                                                 *)
(* ------------------------------------------------------------------ *)

let chain_families rng ~families ~members ~len =
  let div = { Genome_gen.snp_rate = 0.02; indel_rate = 0.002; indel_mean_len = 2.0 } in
  let out = Array.make (families * members) ("", seq "A") in
  for f = 0 to families - 1 do
    let prev = ref (Genome_gen.generate rng ~len ()) in
    for m = 0 to members - 1 do
      if m > 0 then prev := Genome_gen.mutate rng ~divergence:div !prev;
      out.((f * members) + m) <- (Printf.sprintf "fam%d_%02d" f m, !prev)
    done
  done;
  out

let star_families rng ~families ~members ~len =
  (* star shape: every member a light mutation of the family root, so all
     within-family pairs stay well above the identity cutoff while
     cross-family pairs stay far below — the regime where the prefilter
     and brute force must agree exactly *)
  let div = { Genome_gen.snp_rate = 0.02; indel_rate = 0.002; indel_mean_len = 2.0 } in
  let out = Array.make (families * members) ("", seq "A") in
  for f = 0 to families - 1 do
    let root = Genome_gen.generate rng ~len () in
    for m = 0 to members - 1 do
      let s = if m = 0 then root else Genome_gen.mutate rng ~divergence:div root in
      out.((f * members) + m) <- (Printf.sprintf "s%03d" ((f * members) + m), s)
    done
  done;
  out

let read_all path = In_channel.with_open_text path In_channel.input_lines

let test_pipeline_end_to_end () =
  let rng = Rng.create ~seed:21 in
  let seqs = star_families rng ~families:4 ~members:12 ~len:160 in
  let params =
    { Pipeline.default_params with
      scheme = Scheme.unit_cost; min_shared = 3; min_ident = 0.7; top_k = 16 }
  in
  let out = Filename.temp_file "anyseq_test_net" ".tsv" in
  let ref_out = Filename.temp_file "anyseq_test_net_ref" ".tsv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove out; Sys.remove ref_out)
    (fun () ->
      let r =
        match Pipeline.run ~out params (Pipeline.Seqs seqs) with
        | Ok r -> r
        | Error msg -> Alcotest.failf "pipeline: %s" msg
      in
      Alcotest.(check int) "sequences" (Array.length seqs) r.Pipeline.sequences;
      Alcotest.(check int) "pair accounting adds up" r.Pipeline.pairs_total
        (r.Pipeline.pairs_pruned + r.Pipeline.pairs_aligned + r.Pipeline.pairs_cutoff
        + r.Pipeline.pairs_timeout + r.Pipeline.pairs_failed);
      Alcotest.(check int) "no failures" 0 r.Pipeline.pairs_failed;
      Alcotest.(check bool) "prefilter pruned something" true (r.Pipeline.pairs_pruned > 0);
      Alcotest.(check bool) "edges found" true (r.Pipeline.edges > 0);
      Alcotest.(check int) "four clusters" 4 r.Pipeline.components.Components.clusters;
      (* brute-force reference: same cutoffs, prefilter disabled *)
      let rr =
        match
          Pipeline.run ~out:ref_out { params with min_shared = 0 } (Pipeline.Seqs seqs)
        with
        | Ok r -> r
        | Error msg -> Alcotest.failf "reference: %s" msg
      in
      Alcotest.(check int) "reference pruned nothing" 0 rr.Pipeline.pairs_pruned;
      (* the chain decays identity, so distant within-family pairs fail the
         identity cutoff either way: the prefiltered edge list must equal
         the brute-force one byte for byte *)
      Alcotest.(check bool) "edge list matches brute force" true
        (read_all out = read_all ref_out))

let test_pipeline_too_short_and_statusz () =
  let rng = Rng.create ~seed:22 in
  let m = Anyseq_runtime.Metrics.create () in
  Alcotest.(check bool) "no status before a run" true (Pipeline.status_json m = None);
  let seqs =
    Array.append
      [| ("tiny1", seq "ACGT"); ("tiny2", seq "AC") |]
      (chain_families rng ~families:2 ~members:6 ~len:140)
  in
  let out = Filename.temp_file "anyseq_test_net" ".tsv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove out)
    (fun () ->
      let r =
        match
          Pipeline.run ~metrics:m ~out
            { Pipeline.default_params with scheme = Scheme.unit_cost; min_shared = 3 }
            (Pipeline.Seqs seqs)
        with
        | Ok r -> r
        | Error msg -> Alcotest.failf "pipeline: %s" msg
      in
      Alcotest.(check int) "short sequences counted" 2 r.Pipeline.too_short;
      Alcotest.(check int) "still clustered as singletons" 2
        r.Pipeline.components.Components.singletons;
      match Pipeline.status_json m with
      | None -> Alcotest.fail "status_json expected after a run"
      | Some json ->
          Alcotest.(check bool) "phase present" true
            (Helpers.contains_sub json "\"phase\":\"done\"");
          Alcotest.(check bool) "seqs_indexed present" true
            (Helpers.contains_sub json "\"seqs_indexed\":14"))

let test_pipeline_bad_input () =
  let out = Filename.temp_file "anyseq_test_net" ".tsv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove out)
    (fun () ->
      match Pipeline.run ~out Pipeline.default_params (Pipeline.File "/nonexistent.fa") with
      | Ok _ -> Alcotest.fail "expected error on missing input"
      | Error _ -> ())

let () =
  Alcotest.run "network"
    [
      ( "minimizer",
        [
          Alcotest.test_case "shorter than k" `Quick test_minimizer_short;
          Alcotest.test_case "homopolymer" `Quick test_minimizer_homopolymer;
          Alcotest.test_case "duplicates" `Quick test_minimizer_duplicates;
          Alcotest.test_case "sorted distinct" `Quick test_minimizer_sorted_distinct;
          Alcotest.test_case "validation" `Quick test_minimizer_validation;
        ] );
      ( "index",
        [
          Alcotest.test_case "matches pairwise shared" `Quick test_index_matches_pairwise;
          Alcotest.test_case "brute-force mode" `Quick test_index_brute_force_mode;
        ] );
      ("topk", [ Alcotest.test_case "order independent" `Quick test_topk_order_independent ]);
      ("edges", [ Alcotest.test_case "spill and merge" `Quick test_edges_spill_merge ]);
      ("components", [ Alcotest.test_case "summary" `Quick test_components ]);
      ( "pipeline",
        [
          Alcotest.test_case "end to end vs brute force" `Quick test_pipeline_end_to_end;
          Alcotest.test_case "short sequences and status" `Quick test_pipeline_too_short_and_statusz;
          Alcotest.test_case "bad input" `Quick test_pipeline_bad_input;
        ] );
    ]
