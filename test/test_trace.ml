(* Tests of the tracing layer: span nesting, per-domain rings under
   concurrency, wraparound semantics, the disabled-path guard, the Chrome
   exporter's output shape, and the end-to-end claim that a traced service
   batch records spans from every layer of the stack.

   Tracing is global state: every test enables with its own buffer and
   disables before returning. *)

module Trace = Anyseq_trace.Trace
module Export = Anyseq_trace.Export

let with_tracing ?buffer f =
  Trace.enable ?buffer ();
  Fun.protect ~finally:Trace.disable f

let test_nesting () =
  with_tracing @@ fun () ->
  Trace.with_span "outer" (fun () ->
      Trace.with_span "inner" (fun () -> ());
      Trace.with_span "inner" (fun () -> ()));
  let spans = Trace.spans () in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  let outer = List.find (fun s -> s.Trace.name = "outer") spans in
  let inners = List.filter (fun s -> s.Trace.name = "inner") spans in
  Alcotest.(check int) "outer is a root" 0 outer.Trace.parent;
  List.iter
    (fun s ->
      Alcotest.(check int) "inner nests under outer" outer.Trace.id s.Trace.parent;
      Alcotest.(check bool) "child within parent interval" true
        (s.Trace.start_ns >= outer.Trace.start_ns && s.Trace.end_ns <= outer.Trace.end_ns))
    inners

let test_attrs_and_frames () =
  with_tracing @@ fun () ->
  let frame = Trace.start "work" ~attrs:[ ("phase", Trace.Str "a") ] in
  Trace.add frame "items" (Trace.Int 7);
  Trace.finish frame ~attrs:[ ("status", Trace.Str "ok") ];
  match Trace.spans () with
  | [ s ] ->
      Alcotest.(check string) "name" "work" s.Trace.name;
      Alcotest.(check bool) "attrs in attachment order" true
        (List.map fst s.Trace.attrs = [ "phase"; "items"; "status" ]);
      Alcotest.(check bool) "int attr" true (List.assoc "items" s.Trace.attrs = Trace.Int 7)
  | spans -> Alcotest.failf "expected one span, got %d" (List.length spans)

let test_concurrent_domains () =
  let domains = 4 and per_domain = 20 in
  with_tracing @@ fun () ->
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              Trace.with_span "parent"
                ~attrs:[ ("worker", Trace.Int d) ]
                (fun () -> Trace.with_span "child" (fun () -> ignore (i * i)))
            done))
  in
  List.iter Domain.join workers;
  let spans = Trace.spans () in
  Alcotest.(check int) "all spans recorded" (2 * domains * per_domain) (List.length spans);
  let by_id = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace by_id s.Trace.id s) spans;
  List.iter
    (fun s ->
      if s.Trace.name = "child" then begin
        let p = Hashtbl.find by_id s.Trace.parent in
        Alcotest.(check string) "child's parent is a parent span" "parent" p.Trace.name;
        Alcotest.(check int) "parent/child share a domain" p.Trace.domain s.Trace.domain
      end)
    spans;
  let domains_seen =
    List.sort_uniq compare (List.map (fun s -> s.Trace.domain) spans)
  in
  Alcotest.(check int) "spans from four domains" domains (List.length domains_seen)

let test_wraparound_keeps_newest () =
  with_tracing ~buffer:8 @@ fun () ->
  for i = 1 to 20 do
    Trace.with_span (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  let spans = Trace.spans () in
  Alcotest.(check int) "ring holds capacity" 8 (List.length spans);
  Alcotest.(check int) "dropped the rest" 12 (Trace.dropped ());
  let names = List.map (fun s -> s.Trace.name) spans in
  Alcotest.(check (list string)) "newest survive, in order"
    (List.init 8 (fun i -> Printf.sprintf "s%d" (i + 13)))
    names

let test_disabled_is_free () =
  Trace.disable ();
  Trace.clear ();
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  (* No frames, no spans, no crashes — and the Option-threading API
     degrades to no-ops. *)
  let frame = Trace.start "ghost" in
  Alcotest.(check bool) "no frame handed out" true (frame = None);
  Trace.add frame "k" (Trace.Int 1);
  Trace.finish frame;
  Trace.with_span "ghost" (fun () -> ());
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.spans ()));
  (* Lenient smoke check that the guard is cheap: a million disabled
     with_span calls should be nowhere near a traced run's cost. *)
  let t0 = Anyseq_util.Timer.now_ns () in
  for _ = 1 to 1_000_000 do
    Trace.with_span "off" (fun () -> ())
  done;
  let dt_ms = Int64.to_float (Anyseq_util.Timer.elapsed_ns t0) /. 1e6 in
  Alcotest.(check bool) "1M disabled spans under 250ms" true (dt_ms < 250.0)

let contains = Helpers.contains_sub

let test_chrome_json_shape () =
  with_tracing @@ fun () ->
  Trace.with_span "root" ~attrs:[ ("k", Trace.Int 3); ("s", Trace.Str "a\"b") ] (fun () ->
      Trace.with_span "leaf" (fun () -> ()));
  let json = String.trim (Export.chrome_json (Trace.spans ())) in
  Alcotest.(check bool) "top-level object" true
    (String.length json > 2 && json.[0] = '{' && json.[String.length json - 1] = '}');
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains json needle))
    [
      "\"traceEvents\""; "\"ph\":\"X\""; "\"name\":\"root\""; "\"name\":\"leaf\"";
      "\"ts\":"; "\"dur\":"; "\"pid\":"; "\"tid\":"; "\"k\":3"; "\"s\":\"a\\\"b\"";
    ];
  (* Structural sanity without a JSON parser: brackets and braces balance
     and quotes pair up outside escapes. *)
  let depth = ref 0 and ok = ref true and in_str = ref false and escaped = ref false in
  String.iter
    (fun c ->
      if !escaped then escaped := false
      else if !in_str then begin
        if c = '\\' then escaped := true else if c = '"' then in_str := false
      end
      else
        match c with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
            decr depth;
            if !depth < 0 then ok := false
        | _ -> ())
    json;
  Alcotest.(check bool) "brackets balance" true (!ok && !depth = 0 && not !in_str)

let test_span_tree_render () =
  with_tracing @@ fun () ->
  Trace.with_span "batch" (fun () ->
      for _ = 1 to 3 do
        Trace.with_span "chunk" (fun () -> ())
      done);
  let tree = Export.span_tree (Trace.spans ()) in
  Alcotest.(check bool) "root row" true (contains tree "batch");
  Alcotest.(check bool) "aggregated child row" true (contains tree "chunk");
  Alcotest.(check bool) "count column aggregates" true (contains tree "3")

(* End-to-end: one traced batch through a fresh service must produce spans
   from the partial evaluator, the specialization cache, the service
   lifecycle, and a compute backend — the observability acceptance bar. *)
let test_batch_traces_all_layers () =
  with_tracing @@ fun () ->
  let service = Anyseq.Service.create ~capacity:64 () in
  let config = Anyseq.Config.make ~traceback:false () in
  let pairs = Array.init 16 (fun i -> (String.make (20 + i) 'A', String.make 24 'A')) in
  let results = Anyseq.align_batch ~service ~config pairs in
  Array.iter (fun r -> Alcotest.(check bool) "job ok" true (Result.is_ok r)) results;
  let spans = Trace.spans () in
  let layers =
    List.sort_uniq compare
      (List.filter_map
         (fun s ->
           match String.index_opt s.Trace.name '.' with
           | Some i -> Some (String.sub s.Trace.name 0 i)
           | None -> None)
         spans)
  in
  List.iter
    (fun layer ->
      Alcotest.(check bool) (layer ^ " spans present") true (List.mem layer layers))
    [ "pe"; "cache"; "service"; "backend" ];
  (* PE spans carry the provenance attributes the issue promises. *)
  let pe = List.find (fun s -> s.Trace.name = "pe.specialize") spans in
  List.iter
    (fun key ->
      Alcotest.(check bool) ("pe attr " ^ key) true (List.mem_assoc key pe.Trace.attrs))
    [ "fuel_limit"; "fuel_used"; "unfolds"; "folds"; "residual_nodes" ]

let () =
  Alcotest.run "trace"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_nesting;
          Alcotest.test_case "frames and attrs" `Quick test_attrs_and_frames;
          Alcotest.test_case "four concurrent domains" `Quick test_concurrent_domains;
          Alcotest.test_case "wraparound keeps newest" `Quick test_wraparound_keeps_newest;
          Alcotest.test_case "disabled path" `Quick test_disabled_is_free;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome json shape" `Quick test_chrome_json_shape;
          Alcotest.test_case "span tree render" `Quick test_span_tree_render;
        ] );
      ( "integration",
        [ Alcotest.test_case "batch traces all layers" `Quick test_batch_traces_all_layers ] );
    ]
