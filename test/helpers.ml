(* Shared test utilities. *)

module Rng = Anyseq_util.Rng
module Alphabet = Anyseq_bio.Alphabet
module Sequence = Anyseq_bio.Sequence
module Alignment = Anyseq_bio.Alignment
module Scheme = Anyseq_scoring.Scheme
module T = Anyseq_core.Types

let schemes_under_test =
  [
    ("paper-linear", Scheme.paper_linear);
    ("paper-affine", Scheme.paper_affine);
    ("steep-affine", Scheme.dna_simple_affine ~match_:3 ~mismatch:(-2) ~gap_open:5 ~gap_extend:2);
    (* Unit_cost-certified: batches through the service additionally
       exercise the proof-gated Myers bit-parallel tier. *)
    ("unit-cost", Scheme.unit_cost);
  ]

let modes_under_test = [ T.Global; T.Semiglobal; T.Local ]

let random_dna rng ~len = Sequence.random rng Alphabet.dna4 ~len

(* A pair that is either unrelated or a mutated copy — correlated pairs
   exercise long match runs and realistic gap structure. *)
let random_pair rng ~max_len =
  let n = Rng.int rng (max_len + 1) in
  if Rng.bool rng then (random_dna rng ~len:n, random_dna rng ~len:(Rng.int rng (max_len + 1)))
  else
    let base = random_dna rng ~len:(max 1 n) in
    (base, Anyseq_seqio.Genome_gen.mutate rng base)

let reference_score scheme mode ~query ~subject =
  (Anyseq_core.Reference.score_only scheme mode ~query ~subject).T.score

(* Checks an alignment's internal consistency against the oracle score. *)
let check_alignment ~what scheme mode ~query ~subject (alignment : Alignment.t) =
  let expected = reference_score scheme mode ~query ~subject in
  Alcotest.(check int) (what ^ ": optimal score") expected alignment.Alignment.score;
  match
    Alignment.rescore ~subst:scheme.Scheme.subst ~gap:scheme.Scheme.gap ~query ~subject
      alignment
  with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "%s: invalid alignment: %s" what msg

(* qcheck wrapper producing an alcotest case. *)
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* Deterministic seed generator for qcheck properties that want our Rng. *)
let seeded_rng_gen = QCheck2.Gen.map (fun seed -> Rng.create ~seed) QCheck2.Gen.nat

let contains_sub haystack needle =
  let hn = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= hn && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0
