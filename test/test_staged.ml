module E = Anyseq_staged.Expr
module Pe = Anyseq_staged.Pe
module Compile = Anyseq_staged.Compile
module Gen = Anyseq_staged.Gen

let pow_program filter =
  let open E in
  [
    {
      name = "pow";
      params = [ "x"; "n" ];
      filter;
      body =
        if_
          (Binop (Le, var "n", int 0))
          (int 1)
          (Binop (Mul, var "x", Call ("pow", [ var "x"; Binop (Sub, var "n", int 1) ])));
    };
  ]

let run_pe ?static_arrays ?fuel ~program ~env e =
  match Pe.run ?static_arrays ?fuel ~program ~env e with
  | Ok r -> r
  | Error err -> Alcotest.failf "PE failed: %s" (Pe.error_to_string err)

(* ------------------------------------------------------------------ *)
(* Expr                                                                *)
(* ------------------------------------------------------------------ *)

let test_expr_size_and_free_vars () =
  let open E in
  let e = let_ "a" (Binop (Add, var "x", int 1)) (Binop (Mul, var "a", var "y")) in
  Alcotest.(check int) "size" 7 (size e);
  Alcotest.(check (list string)) "free vars" [ "x"; "y" ] (free_vars e);
  Alcotest.(check (list string)) "bound var not free" [ "x" ]
    (free_vars (let_ "y" (var "x") (var "y")))

let test_expr_pp () =
  let open E in
  let text = to_string (Binop (Add, var "x", int 2)) in
  Alcotest.(check bool) "prints infix" true (Helpers.contains_sub text "x + 2")

(* ------------------------------------------------------------------ *)
(* Partial evaluation                                                  *)
(* ------------------------------------------------------------------ *)

let test_pe_constant_folding () =
  let open E in
  let r = run_pe ~program:[] ~env:[] (Binop (Add, int 2, Binop (Mul, int 3, int 4))) in
  Alcotest.(check string) "folds" "14" (E.to_string r.Pe.entry)

let test_pe_algebraic_simplification () =
  let open E in
  let check name e expected =
    let r = run_pe ~program:[] ~env:[] e in
    Alcotest.(check string) name expected (E.to_string r.Pe.entry)
  in
  check "x + 0" (Binop (Add, var "x", int 0)) "x";
  check "1 * x" (Binop (Mul, int 1, var "x")) "x";
  check "x * 0" (Binop (Mul, var "x", int 0)) "0";
  check "true && b" (Binop (And, Bool true, var "b")) "b";
  check "false || b" (Binop (Or, Bool false, var "b")) "b"

let test_pe_static_if () =
  let open E in
  let e = if_ (Binop (Lt, int 1, int 2)) (var "a") (Call ("missing", [])) in
  (* the dead branch must not even be resolved *)
  let r = run_pe ~program:[] ~env:[] e in
  Alcotest.(check string) "selects branch" "a" (E.to_string r.Pe.entry)

let test_pe_let_inlining () =
  let open E in
  let e = let_ "k" (int 5) (Binop (Add, var "k", var "x")) in
  let r = run_pe ~program:[] ~env:[] e in
  Alcotest.(check string) "static let inlined" "(5 + x)" (E.to_string r.Pe.entry)

let test_pe_dynamic_let_kept () =
  let open E in
  let e = let_ "k" (Binop (Add, var "x", int 1)) (Binop (Mul, var "k", var "k")) in
  let r = run_pe ~program:[] ~env:[] e in
  Alcotest.(check bool) "dynamic let residualized" true
    (Helpers.contains_sub (E.to_string r.Pe.entry) "let")

let test_pe_pow_unrolls () =
  let program = pow_program (E.When_static [ "n" ]) in
  let r =
    run_pe ~program ~env:[ ("n", Pe.VInt 5) ] (E.Call ("pow", [ E.var "x"; E.var "n" ]))
  in
  Alcotest.(check string) "loop-less multiplications" "(x * (x * (x * (x * x))))"
    (E.to_string r.Pe.entry);
  Alcotest.(check int) "no residual functions" 0 (List.length r.Pe.fns)

let test_pe_pow_folds_fully () =
  let program = pow_program (E.When_static [ "n" ]) in
  let r =
    run_pe ~program
      ~env:[ ("x", Pe.VInt 3); ("n", Pe.VInt 5) ]
      (E.Call ("pow", [ E.var "x"; E.var "n" ]))
  in
  Alcotest.(check string) "evaluates" "243" (E.to_string r.Pe.entry)

let test_pe_pow_dynamic_residualizes () =
  let program = pow_program (E.When_static [ "n" ]) in
  let r = run_pe ~program ~env:[] (E.Call ("pow", [ E.var "x"; E.var "n" ])) in
  Alcotest.(check int) "one residual recursive function" 1 (List.length r.Pe.fns);
  (* and the residual is runnable *)
  let env = { Compile.empty_env with ints = [ ("x", 2); ("n", 10) ] } in
  (match Compile.interpret r env with
  | Ok v -> Alcotest.(check int) "2^10" 1024 v
  | Error e -> Alcotest.fail (Compile.error_to_string e))

let test_pe_polyvariance () =
  (* Two static variants of the same function coexist. *)
  let open E in
  let program =
    [
      { name = "addk"; params = [ "x"; "k" ]; filter = Never; body = Binop (Add, var "x", var "k") };
    ]
  in
  let e = Binop (Add, Call ("addk", [ var "x"; int 1 ]), Call ("addk", [ var "x"; int 2 ])) in
  let r = run_pe ~program ~env:[] e in
  Alcotest.(check int) "two specializations" 2 (List.length r.Pe.fns);
  let env = { Compile.empty_env with ints = [ ("x", 10) ] } in
  (match Compile.interpret r env with
  | Ok v -> Alcotest.(check int) "evaluates" 23 v
  | Error err -> Alcotest.fail (Compile.error_to_string err))

let test_pe_memoizes_specializations () =
  let open E in
  let program =
    [
      { name = "addk"; params = [ "x"; "k" ]; filter = Never; body = Binop (Add, var "x", var "k") };
    ]
  in
  let e = Binop (Add, Call ("addk", [ var "x"; int 1 ]), Call ("addk", [ var "y"; int 1 ])) in
  let r = run_pe ~program ~env:[] e in
  Alcotest.(check int) "same static args share one variant" 1 (List.length r.Pe.fns)

let test_pe_static_array_folding () =
  let open E in
  let r =
    run_pe
      ~static_arrays:[ ("m", [| 10; 20; 30 |]) ]
      ~program:[] ~env:[ ("i", Pe.VInt 2) ]
      (Read ("m", var "i"))
  in
  Alcotest.(check string) "folded read" "30" (E.to_string r.Pe.entry);
  let r2 = run_pe ~static_arrays:[ ("m", [| 1 |]) ] ~program:[] ~env:[] (Read ("m", var "i")) in
  Alcotest.(check bool) "dynamic index stays a read" true
    (Helpers.contains_sub (E.to_string r2.Pe.entry) "m[")

let test_pe_errors () =
  (match Pe.run ~program:[] ~env:[] (E.Call ("nope", [])) with
  | Error (Pe.Unknown_function "nope") -> ()
  | _ -> Alcotest.fail "expected unknown function");
  (match Pe.run ~program:[] ~env:[] (E.Binop (E.Div, E.Int 1, E.Int 0)) with
  | Error Pe.Division_by_zero -> ()
  | _ -> Alcotest.fail "expected division by zero");
  (match
     Pe.run ~fuel:10
       ~program:(pow_program E.Always)
       ~env:[]
       (E.Call ("pow", [ E.var "x"; E.var "n" ]))
   with
  | Error (Pe.Out_of_fuel _) -> ()
  | _ -> Alcotest.fail "expected out-of-fuel on unbounded Always unfolding");
  match Pe.run ~program:[] ~env:[] (E.Binop (E.Add, E.Bool true, E.Int 1)) with
  | Error (Pe.Type_error _) -> ()
  | _ -> Alcotest.fail "expected type error"

(* Each runtime PE error path, paired with the static check that predicts
   it without spending any fuel. *)
let test_pe_error_paths_predicted () =
  (* Always-filtered recursive cycle: burns fuel at specialization time ... *)
  let always = pow_program E.Always in
  (match Pe.run ~fuel:50 ~program:always ~env:[] (E.Call ("pow", [ E.var "x"; E.var "n" ])) with
  | Error (Pe.Out_of_fuel "pow") -> ()
  | _ -> Alcotest.fail "expected Out_of_fuel unfolding the Always cycle");
  (* ... and the SCC termination check flags the same cycle statically. *)
  (match Anyseq_analysis.Callgraph.check_termination always with
  | [ f ] ->
      Alcotest.(check bool) "termination finding names the cycle" true
        (Helpers.contains_sub (Anyseq_analysis.Findings.to_string f) "pow")
  | fs -> Alcotest.failf "expected exactly one termination finding, got %d" (List.length fs));
  (* Division by a static zero divisor is a PE-time error. *)
  (match
     Pe.run ~program:[] ~env:[ ("a", Pe.VInt 1); ("d", Pe.VInt 0) ]
       (E.Binop (E.Div, E.var "a", E.var "d"))
   with
  | Error Pe.Division_by_zero -> ()
  | _ -> Alcotest.fail "expected division by static zero");
  (* Arity mismatch, at PE time and at analysis time. *)
  let program = pow_program (E.When_static [ "n" ]) in
  let bad_call = E.Call ("pow", [ E.var "x" ]) in
  (match Pe.run ~program ~env:[] bad_call with
  | Error (Pe.Arity_mismatch "pow") -> ()
  | _ -> Alcotest.fail "expected arity mismatch");
  let fs = Anyseq_analysis.Typecheck.check_residual { Pe.entry = bad_call; fns = program } in
  Alcotest.(check bool) "typechecker flags the arity mismatch" true
    (List.exists
       (fun f ->
         Helpers.contains_sub (Anyseq_analysis.Findings.to_string f) "arity mismatch")
       fs)

(* ------------------------------------------------------------------ *)
(* Compile: interpreter vs closure compiler                            *)
(* ------------------------------------------------------------------ *)

(* Random closed integer expressions over variables a,b and array arr. *)
let expr_gen =
  let open QCheck2.Gen in
  sized @@ fix (fun self size ->
      if size <= 1 then
        oneof [ map (fun n -> E.Int (n mod 100)) int; oneofl [ E.Var "a"; E.Var "b" ] ]
      else
        let sub = self (size / 2) in
        oneof
          [
            map2 (fun a b -> E.Binop (E.Add, a, b)) sub sub;
            map2 (fun a b -> E.Binop (E.Sub, a, b)) sub sub;
            map2 (fun a b -> E.Binop (E.Mul, a, b)) sub sub;
            map2 (fun a b -> E.max_ a b) sub sub;
            map2 (fun a b -> E.min_ a b) sub sub;
            map3 (fun c a b -> E.if_ (E.Binop (E.Lt, c, E.Int 50)) a b) sub sub sub;
            map2 (fun rhs body -> E.let_ "t" rhs (E.Binop (E.Add, body, E.Var "t"))) sub sub;
            map (fun idx -> E.Read ("arr", E.max_ (E.Int 0) (E.min_ idx (E.Int 7)))) sub;
          ])

let interp_equals_compiled =
  Helpers.qtest ~count:300 "interpreter = closure compiler"
    QCheck2.Gen.(triple expr_gen (int_bound 100) (int_bound 100))
    (fun (e, a, b) ->
      let residual = { Pe.entry = e; fns = [] } in
      let env =
        {
          Compile.ints = [ ("a", a); ("b", b) ];
          bools = [];
          arrays = [ ("arr", Array.init 8 (fun i -> i * 7)) ];
        }
      in
      let via_interp = Compile.interpret residual env in
      let via_compile =
        match Compile.compile residual with
        | Ok c -> Compile.run_compiled c env
        | Error e -> Error e
      in
      via_interp = via_compile)

let pe_preserves_semantics =
  Helpers.qtest ~count:300 "PE residual evaluates like the original"
    QCheck2.Gen.(triple expr_gen (int_bound 100) (int_bound 100))
    (fun (e, a, b) ->
      let arrays = [ ("arr", Array.init 8 (fun i -> i * 7)) ] in
      let env = { Compile.ints = [ ("a", a); ("b", b) ]; bools = []; arrays } in
      let original = Compile.interpret { Pe.entry = e; fns = [] } env in
      (* specialize with a static, keep b dynamic *)
      match Pe.run ~static_arrays:arrays ~program:[] ~env:[ ("a", Pe.VInt a) ] e with
      | Error _ -> false
      | Ok residual ->
          let specialized =
            Compile.interpret residual { env with Compile.ints = [ ("b", b) ] }
          in
          original = specialized)

let test_compile_errors () =
  let residual = { Pe.entry = E.Var "missing"; fns = [] } in
  (match Compile.interpret residual Compile.empty_env with
  | Error (Compile.Unbound_variable "missing") -> ()
  | _ -> Alcotest.fail "expected unbound variable");
  let residual = { Pe.entry = E.Read ("arr", E.Int 99); fns = [] } in
  (match
     Compile.interpret residual { Compile.empty_env with arrays = [ ("arr", [| 1 |]) ] }
   with
  | Error (Compile.Index_out_of_bounds ("arr", 99)) -> ()
  | _ -> Alcotest.fail "expected out of bounds");
  match Compile.compile { Pe.entry = E.Call ("ghost", []); fns = [] } with
  | Error (Compile.Unknown_function "ghost") -> ()
  | _ -> Alcotest.fail "expected unknown function at compile time"

let test_op_count () =
  let r = { Pe.entry = E.Binop (E.Add, E.Int 1, E.Int 2); fns = [] } in
  Alcotest.(check int) "op count" 3 (Compile.op_count r)

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let collect1 loop a b =
  let acc = ref [] in
  loop a b (fun i -> acc := i :: !acc);
  List.rev !acc

let test_gen_range () =
  Alcotest.(check (list int)) "range" [ 2; 3; 4 ] (collect1 Gen.range 2 5);
  Alcotest.(check (list int)) "empty" [] (collect1 Gen.range 5 5);
  Alcotest.(check (list int)) "rev" [ 4; 3; 2 ] (collect1 Gen.range_rev 2 5);
  Alcotest.(check (list int)) "step" [ 0; 3; 6; 9 ] (collect1 (Gen.step 3) 0 10)

let test_gen_unrolled_calls () =
  Alcotest.(check (list int)) "unrolled = range" (collect1 Gen.range 0 10)
    (collect1 (Gen.unrolled_calls ~factor:4) 0 10)

let cover2 loop x0 x1 y0 y1 =
  let acc = ref [] in
  loop x0 x1 y0 y1 (fun x y -> acc := (x, y) :: !acc);
  List.rev !acc

let full_cover_sorted cells = List.sort compare cells

let test_gen_combine () =
  let cells = cover2 (Gen.combine Gen.range Gen.range) 0 2 0 3 in
  Alcotest.(check int) "count" 6 (List.length cells);
  Alcotest.(check (list (pair int int))) "row major"
    [ (0, 0); (0, 1); (0, 2); (1, 0); (1, 1); (1, 2) ]
    cells

let gen_tile_covers =
  Helpers.qtest ~count:100 "tile2 covers the rectangle exactly once"
    QCheck2.Gen.(
      tup4 (1 -- 7) (1 -- 7) (0 -- 9) (0 -- 9))
    (fun (tx, ty, nx, ny) ->
      let inter = Gen.combine Gen.range Gen.range in
      let intra = Gen.combine Gen.range Gen.range in
      let cells = cover2 (Gen.tile2 ~tile_x:tx ~tile_y:ty ~inter ~intra) 0 nx 0 ny in
      let expected =
        List.concat_map (fun x -> List.init ny (fun y -> (x, y))) (List.init nx Fun.id)
      in
      full_cover_sorted cells = full_cover_sorted expected)

let gen_diagonal_covers =
  Helpers.qtest ~count:100 "diagonal2 covers exactly once in wavefront order"
    QCheck2.Gen.(tup2 (0 -- 9) (0 -- 9))
    (fun (nx, ny) ->
      let cells = cover2 Gen.diagonal2 0 nx 0 ny in
      let expected =
        List.concat_map (fun x -> List.init ny (fun y -> (x, y))) (List.init nx Fun.id)
      in
      full_cover_sorted cells = full_cover_sorted expected
      &&
      (* anti-diagonal indices are non-decreasing *)
      let ds = List.map (fun (x, y) -> x + y) cells in
      List.sort compare ds = ds)

let test_gen_chunked () =
  Alcotest.(check (list int)) "chunked covers in order" (collect1 Gen.range 3 11)
    (collect1 (Gen.chunked ~chunk:3 Gen.range) 3 11)

let test_gen_validation () =
  Alcotest.check_raises "step 0" (Invalid_argument "Gen.step: step must be positive")
    (fun () -> Gen.step 0 0 1 ignore);
  Alcotest.check_raises "tile 0" (Invalid_argument "Gen.tile2: tile sizes must be positive")
    (fun () ->
      Gen.tile2 ~tile_x:0 ~tile_y:1 ~inter:Gen.diagonal2 ~intra:Gen.diagonal2 0 1 0 1
        (fun _ _ -> ()))

let () =
  Alcotest.run "staged"
    [
      ( "expr",
        [
          Alcotest.test_case "size and free vars" `Quick test_expr_size_and_free_vars;
          Alcotest.test_case "pretty printing" `Quick test_expr_pp;
        ] );
      ( "pe",
        [
          Alcotest.test_case "constant folding" `Quick test_pe_constant_folding;
          Alcotest.test_case "algebraic simplification" `Quick test_pe_algebraic_simplification;
          Alcotest.test_case "static if" `Quick test_pe_static_if;
          Alcotest.test_case "let inlining" `Quick test_pe_let_inlining;
          Alcotest.test_case "dynamic let kept" `Quick test_pe_dynamic_let_kept;
          Alcotest.test_case "pow unrolls (paper §II-B)" `Quick test_pe_pow_unrolls;
          Alcotest.test_case "pow folds fully" `Quick test_pe_pow_folds_fully;
          Alcotest.test_case "pow residualizes" `Quick test_pe_pow_dynamic_residualizes;
          Alcotest.test_case "polyvariance" `Quick test_pe_polyvariance;
          Alcotest.test_case "memoization" `Quick test_pe_memoizes_specializations;
          Alcotest.test_case "static array folding" `Quick test_pe_static_array_folding;
          Alcotest.test_case "errors" `Quick test_pe_errors;
          Alcotest.test_case "error paths statically predicted" `Quick
            test_pe_error_paths_predicted;
        ] );
      ( "compile",
        [
          interp_equals_compiled;
          pe_preserves_semantics;
          Alcotest.test_case "errors" `Quick test_compile_errors;
          Alcotest.test_case "op count" `Quick test_op_count;
        ] );
      ( "generators",
        [
          Alcotest.test_case "range/step" `Quick test_gen_range;
          Alcotest.test_case "unrolled calls" `Quick test_gen_unrolled_calls;
          Alcotest.test_case "combine" `Quick test_gen_combine;
          gen_tile_covers;
          gen_diagonal_covers;
          Alcotest.test_case "chunked" `Quick test_gen_chunked;
          Alcotest.test_case "validation" `Quick test_gen_validation;
        ] );
    ]
