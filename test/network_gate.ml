(* network-gate: tier-1 smoke for the similarity-network pipeline, run by
   `dune build @network-gate`.

   One synthetic input — 512 protein-sized DNA sequences in 8 star
   families of 64 (every member a light mutation of the family root, so
   all within-family pairs stay similar) — and three assertions:

   1. {b Prefilter ≡ brute force.} The minimizer prefilter may only skip
      pairs that could never form an edge. The gate runs the pipeline
      twice with identical cutoffs — once with the prefilter on
      (min_shared > 0), once in brute-force mode (min_shared = 0, every
      pair aligned) — and requires the two edge TSVs to be byte-identical.

   2. {b Shard independence.} The same prefiltered run at shards=1 and
      shards=2 must produce byte-identical edge files: candidate order,
      admission order, scores and top-k tie-breaks are all deterministic,
      so worker-domain scheduling can never leak into the output.

   3. {b Cluster stability.} Both component summaries must agree with
      each other and with the construction: 8 clusters of 64, no
      singletons. *)

module Rng = Anyseq_util.Rng
module Pipeline = Anyseq.Pipeline
module Components = Anyseq.Components
module Genome_gen = Anyseq.Genome_gen
module Scheme = Anyseq.Scheme

let failures = ref 0

let check what ok =
  if not ok then begin
    incr failures;
    Printf.eprintf "FAIL: %s\n" what
  end

let families = 8
let members = 64
let len = 128

(* star families: member m > 0 is a fresh mutation of the family root,
   so every within-family pair sits at ~2x the per-step divergence and
   the candidate sets stay dense — the regime where prefilter and brute
   force must agree exactly *)
let star_families ~seed =
  let rng = Rng.create ~seed in
  let div = { Genome_gen.snp_rate = 0.02; indel_rate = 0.002; indel_mean_len = 2.0 } in
  let out = Array.make (families * members) ("", Anyseq.Sequence.of_string Anyseq.Alphabet.dna4 "A") in
  for f = 0 to families - 1 do
    let root = Genome_gen.generate rng ~len () in
    for m = 0 to members - 1 do
      let s = if m = 0 then root else Genome_gen.mutate rng ~divergence:div root in
      out.((f * members) + m) <- (Printf.sprintf "fam%d_%03d" f m, s)
    done
  done;
  out

let params ~min_shared =
  {
    Pipeline.default_params with
    scheme = Scheme.unit_cost;
    min_shared;
    min_ident = 0.7;
    top_k = 8;
  }

let run_once ~tag ~shards ~min_shared seqs =
  let out =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "anyseq-netgate-%d-%s.tsv" (Unix.getpid ()) tag)
  in
  let service = Anyseq.Service.create ~shards ~capacity:4096 () in
  let r =
    Fun.protect
      ~finally:(fun () -> Anyseq.Service.shutdown service)
      (fun () -> Pipeline.run ~service ~out (params ~min_shared) (Pipeline.Seqs seqs))
  in
  match r with
  | Ok rep -> (out, rep)
  | Error msg ->
      Printf.eprintf "FAIL: %s run: %s\n" tag msg;
      exit 1

let read_bytes path = In_channel.with_open_text path In_channel.input_all

let () =
  let seqs = star_families ~seed:4242 in
  let n = Array.length seqs in
  let pre_out, pre = run_once ~tag:"prefilter" ~shards:1 ~min_shared:3 seqs in
  let ref_out, rf = run_once ~tag:"bruteforce" ~shards:1 ~min_shared:0 seqs in
  let sh2_out, sh2 = run_once ~tag:"shards2" ~shards:2 ~min_shared:3 seqs in
  Fun.protect
    ~finally:(fun () -> List.iter Sys.remove [ pre_out; ref_out; sh2_out ])
    (fun () ->
      (* sanity on the workload itself *)
      check "all sequences indexed" (pre.Pipeline.sequences = n);
      check "brute force examined every pair"
        (rf.Pipeline.pairs_aligned + rf.Pipeline.pairs_cutoff = n * (n - 1) / 2
        && rf.Pipeline.pairs_pruned = 0);
      check "prefilter pruned the bulk of the pair space"
        (pre.Pipeline.pairs_pruned * 10 >= pre.Pipeline.pairs_total * 8);
      check "edges exist" (pre.Pipeline.edges > 0);
      (* 1: prefilter ≡ brute force, byte for byte *)
      let pre_bytes = read_bytes pre_out in
      check "prefiltered edge list ≡ brute-force edge list"
        (pre_bytes = read_bytes ref_out);
      (* 2: shards=1 ≡ shards=2, byte for byte *)
      check "edge list identical at shards=1 and shards=2"
        (pre_bytes = read_bytes sh2_out);
      (* 3: cluster structure is the constructed one, on every run *)
      List.iter
        (fun (tag, rep) ->
          let c = rep.Pipeline.components in
          check
            (Printf.sprintf "%s: %d clusters of %d, no singletons" tag families members)
            (c.Components.clusters = families
            && c.Components.largest = members
            && c.Components.singletons = 0
            && Array.for_all (fun (_, size) -> size = members) c.Components.sizes))
        [ ("prefilter", pre); ("bruteforce", rf); ("shards2", sh2) ];
      check "component counts agree across runs"
        (pre.Pipeline.components.Components.components
         = rf.Pipeline.components.Components.components
        && pre.Pipeline.components.Components.components
           = sh2.Pipeline.components.Components.components));
  if !failures = 0 then begin
    Printf.printf
      "network-gate OK: %d seqs, %d/%d pairs aligned (%.1f%% pruned), %d edges, %d \
       clusters; prefilter ≡ brute force; shards 1 ≡ 2\n"
      n pre.Pipeline.pairs_aligned pre.Pipeline.pairs_total
      (100.0
      *. float_of_int pre.Pipeline.pairs_pruned
      /. float_of_int (max 1 pre.Pipeline.pairs_total))
      pre.Pipeline.edges pre.Pipeline.components.Components.clusters;
    exit 0
  end
  else begin
    Printf.eprintf "network-gate: %d failure(s)\n" !failures;
    exit 1
  end
