(* Allocation gate for the zero-allocation hot path (ISSUE 5).

   Warms a service (specialization cache populated, per-domain workspace
   arenas grown to steady state), then measures [Gc.minor_words] across
   repeated score-only batches through [Service.run]. In steady state the
   per-alignment cost must stay under a fixed budget of minor words —
   request parsing and result plumbing only; DP rows, lane buffers, and
   traceback matrices all come from the arena.

   Run via [dune build @alloc-gate]. Exits non-zero (failing the alias)
   when the budget is exceeded, so a regression that reintroduces per-call
   allocation in the kernels or the batch executor breaks tier-1. *)

module Rng = Anyseq_util.Rng
module Sequence = Anyseq.Sequence
module Service = Anyseq.Service
module Config = Anyseq.Config

(* Budget, in minor words per alignment, for a 50-150 bp score-only
   batch. Steady state measures ~81: two sequence parses (~17 words each
   of packed codes), the prepared-job record, the result cell, and the
   grouping cons cells; the kernel itself contributes only its 4-word
   [ends] record. 100 leaves headroom for compiler version drift without
   letting a per-row allocation (151+ words) or a per-cell one sneak
   back in. *)
let budget_words_per_alignment = 100.0

let jobs_per_batch = 64
let warm_batches = 4
let measured_batches = 16

let random_sequence rng len =
  String.init len (fun _ -> "ACGT".[Rng.int rng 4])

let () =
  let svc = Service.create () in
  let rng = Rng.create ~seed:2024 in
  let config = Config.make ~traceback:false ~backend:Config.Scalar () in
  let jobs =
    Array.init jobs_per_batch (fun _ ->
        let query = random_sequence rng (50 + Rng.int rng 101) in
        let subject = random_sequence rng (50 + Rng.int rng 101) in
        Service.job ~config ~query ~subject ())
  in
  let run_batch () =
    let results = Service.run svc jobs in
    Array.iter
      (function
        | Ok _ -> ()
        | Error e ->
            Printf.eprintf "alloc-gate: job failed: %s\n" (Anyseq.Error.to_string e);
            exit 2)
      results
  in
  for _ = 1 to warm_batches do
    run_batch ()
  done;
  let before = Gc.minor_words () in
  for _ = 1 to measured_batches do
    run_batch ()
  done;
  let per_alignment =
    (Gc.minor_words () -. before)
    /. float_of_int (measured_batches * jobs_per_batch)
  in
  Printf.printf
    "alloc-gate: %.1f minor words/alignment (budget %.0f, %d alignments measured)\n"
    per_alignment budget_words_per_alignment
    (measured_batches * jobs_per_batch);
  if per_alignment >= budget_words_per_alignment then begin
    Printf.eprintf
      "alloc-gate FAILED: steady-state allocation %.1f >= %.0f minor words/alignment\n"
      per_alignment budget_words_per_alignment;
    exit 1
  end
