(* shard-gate: tier-1 smoke for the domain-sharded runtime, run by
   `dune build @shard-gate`.

   Two assertions:

   1. {b Loopback ≡ direct at shards=2.} A real server over a Unix socket
      whose service runs two shards (two worker domains) must answer
      byte-identically to direct Anyseq.align — sharded dispatch, work
      stealing and the submit/await pipeline change scheduling, never
      results.

   2. {b The alloc budget holds per shard.} The PR-5 zero-allocation hot
      path is enforced per executing domain: after warmup, each shard's
      worker must stay under the same minor-words-per-alignment budget
      the single-shard @alloc-gate enforces. [Gc.minor_words] is
      per-domain in OCaml 5, so each worker publishes its own count
      (Service.shard_stats); tickets are awaited only after the queues
      drain, so the measured batches run entirely on the workers. *)

module Rng = Anyseq_util.Rng
module Service = Anyseq.Service
module Config = Anyseq.Config
module Wire = Anyseq.Wire
module Addr = Anyseq.Addr
module Client = Anyseq.Client
module Server = Anyseq.Server

let budget_words_per_alignment = 100.0
let failures = ref 0

let check what ok =
  if not ok then begin
    incr failures;
    Printf.eprintf "FAIL: %s\n" what
  end

let checkf what fmt = Printf.ksprintf (fun msg -> check (what ^ ": " ^ msg)) fmt

let random_pairs ~seed ~count ~max_len =
  let rng = Rng.create ~seed in
  Array.init count (fun _ ->
      let dna n = String.init n (fun _ -> "ACGTN".[Rng.int rng 5]) in
      (dna (1 + Rng.int rng max_len), dna (1 + Rng.int rng max_len)))

(* ---- part 1: loopback ≡ direct with a two-shard service ---- *)

let loopback () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "anyseq-shard-gate-%d.sock" (Unix.getpid ()))
  in
  let addr = Addr.Unix_socket path in
  let cfg = Server.default_config ~addrs:[ addr ] ~shards:2 () in
  match Server.start cfg with
  | Error msg ->
      checkf "server" "start: %s" msg false;
      0
  | Ok srv ->
      check "service runs 2 shards" (Service.shards (Server.service srv) = 2);
      let pairs = random_pairs ~seed:97 ~count:64 ~max_len:120 in
      let total = ref 0 in
      List.iter
        (fun (name, config) ->
          match Wire.resolve_config config with
          | Error msg -> checkf name "resolve_config: %s" msg false
          | Ok rconfig -> (
              match Client.connect addr with
              | Error msg -> checkf name "connect: %s" msg false
              | Ok conn ->
                  Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
                  (match Client.align_many conn ~window:16 ~config pairs with
                  | Error msg -> checkf name "pipeline: %s" msg false
                  | Ok results ->
                      Array.iteri
                        (fun i r ->
                          incr total;
                          let query, subject = pairs.(i) in
                          match (r, Anyseq.align ~config:rconfig ~query ~subject) with
                          | Ok remote, Ok local ->
                              checkf name "pair %d: score %d <> direct %d" i
                                remote.Client.score local.Anyseq.score
                                (remote.Client.score = local.Anyseq.score);
                              let local_cigar =
                                Option.map
                                  (fun a -> Anyseq.Cigar.to_string a.Anyseq.Alignment.cigar)
                                  local.Anyseq.alignment
                              in
                              checkf name "pair %d: cigar mismatch" i
                                (remote.Client.cigar = local_cigar)
                          | Error e, Ok _ ->
                              checkf name "pair %d: remote error %s" i
                                (Client.error_to_string e) false
                          | Ok _, Error e ->
                              checkf name "pair %d: only direct failed: %s" i
                                (Anyseq.Error.to_string e) false
                          | Error _, Error _ -> ())
                        results)))
        [
          ("score-only", Wire.default_config);
          ("traceback", { Wire.default_config with traceback = true });
        ];
      Server.stop srv;
      check "every accepted request replied"
        (let m = Server.metrics srv in
         let get name = Option.value ~default:0 (Anyseq.Metrics.find m name) in
         get "server/requests_received" = get "server/requests_replied");
      !total

(* ---- part 2: per-shard allocation budget ---- *)

(* Submit without awaiting, let the worker domains drain the queues, and
   only then collect the tickets — so every measured chunk executed on a
   worker and its allocations are attributed to that shard alone. *)
let run_round svc jobs batches =
  let tickets = List.init batches (fun _ -> Service.submit svc jobs) in
  while Service.queue_depth svc > 0 do
    Unix.sleepf 0.0005
  done;
  List.iter
    (fun tk ->
      Array.iter
        (function
          | Ok _ -> ()
          | Error e ->
              Printf.eprintf "shard-gate: job failed: %s\n" (Anyseq.Error.to_string e);
              exit 2)
        (Service.await tk))
    tickets

let per_shard_alloc () =
  let svc = Service.create ~shards:2 () in
  check "created with 2 shards" (Service.shards svc = 2);
  let rng = Rng.create ~seed:2024 in
  let config = Config.make ~traceback:false ~backend:Config.Scalar () in
  let jobs =
    Array.init 64 (fun _ ->
        let dna n = String.init n (fun _ -> "ACGT".[Rng.int rng 4]) in
        Service.job ~config ~query:(dna (50 + Rng.int rng 101))
          ~subject:(dna (50 + Rng.int rng 101)) ())
  in
  run_round svc jobs 8 (* warm both shards' caches and arenas *);
  let before = Service.shard_stats svc in
  run_round svc jobs 16;
  let after = Service.shard_stats svc in
  let measured = ref 0 in
  Array.iteri
    (fun i (a : Service.shard_stat) ->
      let b = before.(i) in
      let jobs_run = a.Service.ss_jobs - b.Service.ss_jobs in
      let words = a.Service.ss_worker_minor_words -. b.Service.ss_worker_minor_words in
      if jobs_run > 0 && words > 0.0 then begin
        incr measured;
        let per = words /. float_of_int jobs_run in
        Printf.printf "shard %d: %.1f minor words/alignment over %d alignments\n" i per
          jobs_run;
        checkf "per-shard alloc budget" "shard %d at %.1f words/alignment (budget %.0f)" i
          per budget_words_per_alignment
          (per < budget_words_per_alignment)
      end)
    after;
  (* Both workers must have executed measured work — otherwise the gate
     measured nothing and stealing/round-robin placement is broken. *)
  check "both shards executed measured work" (!measured = 2);
  Service.shutdown svc

let () =
  let total = loopback () in
  per_shard_alloc ();
  if !failures > 0 then begin
    Printf.eprintf "shard-gate: %d failure(s)\n" !failures;
    exit 1
  end;
  Printf.printf "shard-gate OK: %d loopback alignments matched direct at shards=2, per-shard \
                 alloc budget %.0f held\n"
    total budget_words_per_alignment
