(* Static-analysis suite over the staged IR: planted violations in every
   category must be detected, and the real specialized kernels must be
   clean across the full mode x scheme matrix. *)

module E = Anyseq_staged.Expr
module Pe = Anyseq_staged.Pe
module F = Anyseq_analysis.Findings
module Typecheck = Anyseq_analysis.Typecheck
module Callgraph = Anyseq_analysis.Callgraph
module Bta = Anyseq_analysis.Bta
module Lint = Anyseq_analysis.Lint
module Driver = Anyseq_analysis.Driver
module Scheme = Anyseq_scoring.Scheme
module Staged_kernel = Anyseq_core.Staged_kernel
module T = Anyseq_core.Types

let residual entry = { Pe.entry; fns = [] }

let check_findings name expected_count fs =
  Alcotest.(check int) (name ^ ": finding count") expected_count (List.length fs)

let has_finding ~pass ~sub fs =
  List.exists
    (fun (f : F.t) -> f.F.pass = pass && Helpers.contains_sub (F.to_string f) sub)
    fs

let assert_finding name ~pass ~sub fs =
  if not (has_finding ~pass ~sub fs) then
    Alcotest.failf "%s: expected a %s finding mentioning %S, got:\n%s" name pass sub
      (F.report fs)

(* ------------------------------------------------------------------ *)
(* Typechecker                                                         *)
(* ------------------------------------------------------------------ *)

let test_typecheck_int_bool () =
  let open E in
  let fs = Typecheck.check_residual (residual (Binop (Add, Bool true, Int 1))) in
  assert_finding "bool + int" ~pass:"typecheck" ~sub:"expected int, got bool" fs;
  let fs = Typecheck.check_residual (residual (if_ (Int 3) (Int 1) (Int 2))) in
  assert_finding "int condition" ~pass:"typecheck" ~sub:"expected bool, got int" fs;
  let fs = Typecheck.check_residual (residual (if_ (Bool true) (Int 1) (Bool false))) in
  assert_finding "mixed branches" ~pass:"typecheck" ~sub:"expected" fs;
  let fs = Typecheck.check_residual (residual (Bool true)) in
  assert_finding "bool kernel" ~pass:"typecheck" ~sub:"returns a boolean" fs

let test_typecheck_inference_through_inputs () =
  let open E in
  (* x is used as an int and as a bool: the two uses must unify and fail. *)
  let e = if_ (var "x") (Binop (Add, var "x", Int 1)) (Int 0) in
  let fs = Typecheck.check_residual (residual e) in
  assert_finding "conflicting input uses" ~pass:"typecheck" ~sub:"expected" fs;
  (* consistent uses are fine, whatever the inferred type *)
  let e = if_ (var "b") (Binop (Add, var "x", Int 1)) (Neg (var "x")) in
  check_findings "consistent" 0 (Typecheck.check_residual (residual e))

let test_typecheck_calls () =
  let open E in
  let fs = Typecheck.check_residual (residual (Call ("ghost", [ Int 1 ]))) in
  assert_finding "unknown fn" ~pass:"typecheck" ~sub:"unknown function ghost" fs;
  let fns =
    [ { name = "f"; params = [ "a"; "b" ]; filter = Never; body = Binop (Add, var "a", var "b") } ]
  in
  let fs = Typecheck.check_residual { Pe.entry = Call ("f", [ Int 1 ]); fns } in
  assert_finding "arity" ~pass:"typecheck" ~sub:"arity mismatch calling f" fs;
  let fs = Typecheck.check_residual { Pe.entry = Call ("f", [ Int 1; Bool true ]); fns } in
  assert_finding "bad arg type" ~pass:"typecheck" ~sub:"expected" fs;
  check_findings "good call" 0
    (Typecheck.check_residual { Pe.entry = Call ("f", [ Int 1; var "x" ]); fns })

let test_typecheck_unbound_and_wellformedness () =
  let open E in
  let fs =
    Typecheck.check_program
      [ { name = "f"; params = [ "a" ]; filter = Always; body = Binop (Add, var "a", var "oops") } ]
  in
  assert_finding "unbound in fn body" ~pass:"typecheck" ~sub:"unbound variable oops" fs;
  let fs =
    Typecheck.check_program
      [
        { name = "f"; params = []; filter = Never; body = Int 1 };
        { name = "f"; params = []; filter = Never; body = Int 2 };
      ]
  in
  assert_finding "duplicate" ~pass:"typecheck" ~sub:"duplicate function" fs;
  let fs =
    Typecheck.check_program
      [ { name = "f"; params = [ "a" ]; filter = When_static [ "z" ]; body = var "a" } ]
  in
  assert_finding "bad filter" ~pass:"typecheck" ~sub:"not a parameter" fs

let test_typecheck_generic_program_clean () =
  check_findings "generic kernel program" 0
    (Typecheck.check_program Staged_kernel.generic_program)

(* ------------------------------------------------------------------ *)
(* Call graph / termination                                            *)
(* ------------------------------------------------------------------ *)

let cycle_program filter =
  let open E in
  [
    { name = "f"; params = [ "x" ]; filter; body = Call ("g", [ var "x" ]) };
    { name = "g"; params = [ "x" ]; filter; body = Call ("f", [ var "x" ]) };
  ]

let pow_program filter =
  let open E in
  [
    {
      name = "pow";
      params = [ "x"; "n" ];
      filter;
      body =
        if_
          (Binop (Le, var "n", int 0))
          (int 1)
          (Binop (Mul, var "x", Call ("pow", [ var "x"; Binop (Sub, var "n", int 1) ])));
    };
  ]

let test_callgraph_sccs () =
  let sccs = Callgraph.sccs (cycle_program E.Never) in
  Alcotest.(check int) "one SCC" 1 (List.length sccs);
  Alcotest.(check (list string)) "both members" [ "f"; "g" ]
    (List.sort compare (List.hd sccs));
  let sccs = Callgraph.sccs Staged_kernel.generic_program in
  Alcotest.(check bool) "generic program is acyclic" true
    (List.for_all (fun s -> not (Callgraph.is_cyclic Staged_kernel.generic_program s)) sccs)

let test_termination_flags_always_cycles () =
  let fs = Callgraph.check_termination (pow_program E.Always) in
  check_findings "self-loop" 1 fs;
  assert_finding "self-loop message" ~pass:"termination" ~sub:"Always-filtered" fs;
  check_findings "mutual cycle" 1 (Callgraph.check_termination (cycle_program E.Always));
  (* pow-style When_static recursion terminates when the static argument
     decreases — not flagged. *)
  check_findings "When_static cycle" 0
    (Callgraph.check_termination (pow_program (E.When_static [ "n" ])));
  check_findings "generic program" 0
    (Callgraph.check_termination Staged_kernel.generic_program)

(* ------------------------------------------------------------------ *)
(* Binding-time analysis                                               *)
(* ------------------------------------------------------------------ *)

let test_bta_classify () =
  let open E in
  let st e = Bta.classify ~static_vars:[ "k" ] e in
  Alcotest.(check bool) "literal arith" true (st (Binop (Add, Int 2, Int 3)) = Bta.Static);
  Alcotest.(check bool) "static var" true (st (Binop (Mul, var "k", Int 2)) = Bta.Static);
  Alcotest.(check bool) "dynamic var" true (st (Binop (Add, var "x", Int 1)) = Bta.Dynamic);
  Alcotest.(check bool) "dynamic poisons if" true
    (st (if_ (Binop (Lt, var "k", Int 3)) (var "x") (Int 0)) = Bta.Dynamic);
  Alcotest.(check bool) "static read" true
    (Bta.classify ~static_vars:[ "i" ] ~static_arrays:[ "m" ] (Read ("m", var "i"))
    = Bta.Static);
  Alcotest.(check bool) "dynamic array read" true
    (Bta.classify ~static_vars:[ "i" ] (Read ("m", var "i")) = Bta.Dynamic)

let test_bta_calls () =
  let open E in
  let double =
    [ { name = "double"; params = [ "x" ]; filter = Always; body = Binop (Add, var "x", var "x") } ]
  in
  Alcotest.(check bool) "unfolded static call" true
    (Bta.classify ~program:double (Call ("double", [ Int 21 ])) = Bta.Static);
  Alcotest.(check bool) "unfolded dynamic call" true
    (Bta.classify ~program:double (Call ("double", [ var "y" ])) = Bta.Dynamic);
  let never = [ { (List.hd double) with filter = Never } ] in
  Alcotest.(check bool) "residualized call is dynamic" true
    (Bta.classify ~program:never (Call ("double", [ Int 21 ])) = Bta.Dynamic);
  (* Recursion is conservatively dynamic even with static args. *)
  Alcotest.(check bool) "recursive call" true
    (Bta.classify ~program:(pow_program (E.When_static [ "n" ]))
       (Call ("pow", [ Int 2; Int 3 ]))
    = Bta.Dynamic)

let test_bta_residual_check () =
  let open E in
  (* Planted: a foldable subtree the PE should have collapsed. *)
  let fs = Bta.check_residual (residual (Binop (Max, var "x", Binop (Add, Int 1, Int 2)))) in
  check_findings "foldable subtree" 1 fs;
  assert_finding "foldable subtree" ~pass:"bta" ~sub:"foldable subexpression" fs;
  (* Planted: a static configuration variable that survived substitution. *)
  let fs =
    Bta.check_residual ~static_vars:[ "is_affine" ]
      (residual (if_ (var "is_affine") (var "x") (var "y")))
  in
  assert_finding "leftover static var" ~pass:"bta" ~sub:"is_affine" fs;
  (* A bound variable may shadow a static name without a finding. *)
  let fs =
    Bta.check_residual ~static_vars:[ "go" ]
      (residual (let_ "go" (Binop (Add, var "x", Int 1)) (Binop (Mul, var "go", Int 2))))
  in
  check_findings "shadowing let" 0 fs;
  (* Literal operands inside a dynamic expression are fine. *)
  check_findings "dynamic max with literal" 0
    (Bta.check_residual (residual (Binop (Max, var "x", Int 0))))

let test_bta_agrees_with_pe () =
  (* What BTA calls static, PE folds: specialize pow with static n and
     check the residual passes the BTA completeness check. *)
  let program = pow_program (E.When_static [ "n" ]) in
  match
    Pe.run ~program ~env:[ ("n", Pe.VInt 5) ] (E.Call ("pow", [ E.var "x"; E.var "n" ]))
  with
  | Error e -> Alcotest.failf "PE failed: %s" (Pe.error_to_string e)
  | Ok r -> check_findings "pow residual" 0 (Bta.check_residual ~static_vars:[ "n" ] r)

(* ------------------------------------------------------------------ *)
(* Lint                                                                *)
(* ------------------------------------------------------------------ *)

let config = Staged_kernel.config_vars

let test_lint_config_dispatch () =
  let open E in
  let fs =
    Lint.check ~config_vars:config
      (residual (if_ (var "is_affine") (var "x") (var "y")))
  in
  check_findings "config if" 1 fs;
  assert_finding "config if" ~pass:"lint" ~sub:"configuration dispatch" fs;
  let fs =
    Lint.check ~config_vars:config
      (residual (if_ (Binop (And, var "is_local", var "use_matrix")) (var "x") (var "y")))
  in
  assert_finding "compound config if" ~pass:"lint" ~sub:"configuration dispatch" fs;
  (* Data-dependent control flow is allowed. *)
  check_findings "data if" 0
    (Lint.check ~config_vars:config
       (residual (if_ (Binop (Eq, var "q", var "s")) (var "x") (var "y"))));
  let fs = Lint.check (residual (if_ (Bool true) (var "x") (var "y"))) in
  assert_finding "constant cond" ~pass:"lint" ~sub:"constant condition" fs

let test_lint_config_call () =
  let open E in
  let fns =
    [ { name = "f"; params = [ "a" ]; filter = Never; body = var "a" } ]
  in
  let fs =
    Lint.check ~config_vars:config { Pe.entry = Call ("f", [ var "go" ]); fns }
  in
  assert_finding "config call arg" ~pass:"lint" ~sub:"configuration-dependent" fs;
  check_findings "dynamic call arg" 0
    (Lint.check ~config_vars:config { Pe.entry = Call ("f", [ var "x" ]); fns })

let test_lint_dead_let () =
  let open E in
  let fs = Lint.check (residual (let_ "t" (Binop (Add, var "x", Int 1)) (Int 7))) in
  check_findings "dead let" 1 fs;
  assert_finding "dead let" ~pass:"lint" ~sub:"dead let: t" fs;
  check_findings "live let" 0
    (Lint.check (residual (let_ "t" (Binop (Add, var "x", Int 1)) (Neg (var "t")))))

let test_lint_unregistered_array () =
  let open E in
  let e = Read ("subst_matrix", var "i") in
  let fs = Lint.check (residual e) in
  assert_finding "unregistered" ~pass:"lint" ~sub:"unregistered array subst_matrix" fs;
  check_findings "registered" 0
    (Lint.check ~registered_arrays:[ "subst_matrix" ] (residual e))

(* ------------------------------------------------------------------ *)
(* Driver + the real kernels                                           *)
(* ------------------------------------------------------------------ *)

let matrix =
  List.concat_map
    (fun scheme -> List.map (fun mode -> (scheme, mode)) Helpers.modes_under_test)
    Scheme.builtins

let mode_name = function
  | T.Global -> "global"
  | T.Semiglobal -> "semiglobal"
  | T.Local -> "local"

let test_matrix_zero_findings () =
  List.iter
    (fun (scheme, mode) ->
      let fs = Staged_kernel.analyze scheme mode in
      if fs <> [] then
        Alcotest.failf "%s/%s: %s" (Scheme.to_string scheme) (mode_name mode)
          (F.report fs))
    matrix

(* The property the lint generalizes, asserted directly on Pe's output:
   residuals never branch on configuration parameters. *)
let test_residuals_dispatch_free () =
  let module Sset = Set.Make (String) in
  let config = Sset.of_list Staged_kernel.config_vars in
  let rec assert_no_config_if ~what e =
    match e with
    | E.Int _ | E.Bool _ | E.Var _ -> ()
    | E.Let (_, a, b) -> assert_no_config_if ~what a; assert_no_config_if ~what b
    | E.If (c, t, f) ->
        let fv = Sset.of_list (E.free_vars c) in
        if (not (Sset.is_empty fv)) && Sset.subset fv config then
          Alcotest.failf "%s: residual if over configuration: %s" what (E.to_string c);
        assert_no_config_if ~what c;
        assert_no_config_if ~what t;
        assert_no_config_if ~what f
    | E.Binop (_, a, b) -> assert_no_config_if ~what a; assert_no_config_if ~what b
    | E.Neg a -> assert_no_config_if ~what a
    | E.Read (_, i) -> assert_no_config_if ~what i
    | E.Call (_, args) -> List.iter (assert_no_config_if ~what) args
  in
  List.iter
    (fun (scheme, mode) ->
      List.iter
        (fun (name, r) ->
          let what =
            Printf.sprintf "%s/%s/%s" (Scheme.to_string scheme) (mode_name mode) name
          in
          assert_no_config_if ~what r.Pe.entry;
          List.iter (fun (f : E.fn) -> assert_no_config_if ~what f.E.body) r.Pe.fns)
        (Staged_kernel.residuals scheme mode))
    matrix

let test_driver_specialize_and_analyze () =
  let program = pow_program (E.When_static [ "n" ]) in
  match
    Driver.specialize_and_analyze ~program ~name:"pow"
      ~static_args:[ ("n", Pe.VInt 4) ] ()
  with
  | Error e -> Alcotest.failf "PE failed: %s" (Pe.error_to_string e)
  | Ok (r, fs) ->
      check_findings "pow(x, 4)" 0 fs;
      Alcotest.(check string) "unrolled" "(x * (x * (x * x)))" (E.to_string r.Pe.entry)

let test_driver_catches_planted_program () =
  let fs = Driver.analyze_program (pow_program E.Always) in
  assert_finding "always cycle via driver" ~pass:"termination" ~sub:"Always-filtered" fs

(* ------------------------------------------------------------------ *)
(* Semantic property certificates                                      *)
(* ------------------------------------------------------------------ *)

module Property = Anyseq_analysis.Property
module Costmodel = Anyseq_analysis.Costmodel
module Gaps = Anyseq_bio.Gaps
module Substitution = Anyseq_bio.Substitution
module Alphabet = Anyseq_bio.Alphabet

let test_property_unit_cost_certifies () =
  let report = Property.analyze Scheme.unit_cost in
  match Property.unit_cost report with
  | None -> Alcotest.fail "unit-cost scheme must certify Unit_cost"
  | Some c ->
      Alcotest.(check int) "match" 0 c.Property.uc_match;
      Alcotest.(check int) "mismatch" (-1) c.Property.uc_mismatch;
      Alcotest.(check int) "extend" 1 c.Property.uc_extend;
      Alcotest.(check int) "scale" 1 c.Property.uc_scale;
      Alcotest.(check int) "drift" 0 c.Property.uc_drift;
      (* scale 1, drift 0: the certified score of a distance-D alignment
         is exactly −D, independent of lengths. *)
      Alcotest.(check int) "convert" (-7) (Property.convert c ~n:40 ~m:33 ~distance:7);
      Alcotest.(check bool) "admits global" true
        (Property.admissible_modes report = [ T.Global ])

let test_property_unit_scheme_is_builtin () =
  (* The Myers kernel's published scheme is the builtin value itself, so
     remote jobs naming "unit-cost" resolve to a physically identical
     scheme and hit the same cache entry. *)
  Alcotest.(check bool) "physically equal" true
    (Anyseq_core.Myers.unit_scheme == Scheme.unit_cost)

let test_property_scaled_unit_cost () =
  (* match 2, mismatch 0, gap 1 satisfies ma = 2·mi + 2·ge with
     scale = mi + 2ge = 2 and drift = scale − ge = 1: a scaled/drifted
     unit-cost scheme that still legalizes the distance kernel. *)
  let scheme =
    Scheme.make ~name:"dna-201"
      (Substitution.simple Alphabet.dna4 ~match_:2 ~mismatch:0)
      (Gaps.linear 1)
  in
  let report = Property.analyze scheme in
  match Property.unit_cost report with
  | None -> Alcotest.fail "2/0/1 must certify Unit_cost"
  | Some c ->
      Alcotest.(check int) "scale" 2 c.Property.uc_scale;
      Alcotest.(check int) "drift" 1 c.Property.uc_drift;
      Alcotest.(check int) "convert" (1 * 20 - 2 * 3)
        (Property.convert c ~n:10 ~m:10 ~distance:3)

let test_property_affine_open0_reduces () =
  let scheme =
    Scheme.make ~name:"affine0"
      (Substitution.simple Alphabet.dna4 ~match_:0 ~mismatch:(-1))
      (Gaps.affine ~open_:0 ~extend:1)
  in
  let report = Property.analyze scheme in
  Alcotest.(check bool) "affine open=0 reduces to linear" true
    (List.exists
       (function Property.Affine_reduces_to_linear { extend = 1 } -> true | _ -> false)
       report.Property.certs);
  Alcotest.(check bool) "and still certifies Unit_cost" true
    (Property.unit_cost report <> None)

let test_property_non_unit_schemes_rejected () =
  (* No builtin except unit-cost may certify — in particular the paper's
     +2/−1/1 fails ma = 2·mi + 2·ge (2 ≠ 0). *)
  List.iter
    (fun scheme ->
      if scheme != Scheme.unit_cost then
        Alcotest.(check bool)
          (Scheme.to_string scheme ^ " must not certify Unit_cost")
          true
          (Property.unit_cost (Property.analyze scheme) = None))
    Scheme.builtins;
  (* The wildcard substitution breaks the two-value premise — σ(N,x) is a
     match for every x, so off-diagonal entries are not constant — and
     must be rejected even with unit-cost parameters. *)
  let wildcard_unit =
    Scheme.make ~name:"wild-unit"
      (Substitution.dna_wildcard ~match_:0 ~mismatch:(-1))
      (Gaps.linear 1)
  in
  Alcotest.(check bool) "wildcard off-diagonal rejected" true
    (Property.unit_cost (Property.analyze wildcard_unit) = None)

let test_property_check_refutes_forged_cert () =
  (* Every certificate analyze emits re-validates clean... *)
  List.iter
    (fun scheme ->
      let report = Property.analyze scheme in
      List.iter
        (fun cert ->
          check_findings
            (Scheme.to_string scheme ^ ": " ^ Property.cert_to_string cert)
            0 (Property.check scheme cert))
        report.Property.certs)
    Scheme.builtins;
  (* ...and a forged Unit_cost for a non-member scheme is refuted. *)
  match Property.unit_cost (Property.analyze Scheme.unit_cost) with
  | None -> Alcotest.fail "missing cert to forge"
  | Some c ->
      let fs = Property.check Scheme.paper_linear (Property.Unit_cost c) in
      assert_finding "forged cert" ~pass:"property" ~sub:"claimed" fs

let test_property_score_bounds_width () =
  let bits max_len =
    match Property.score_bounds (Property.analyze ~max_len Scheme.unit_cost) with
    | Some b -> b.Property.sb_bits
    | None -> Alcotest.fail "score bounds must always derive"
  in
  (* L=100: scores lie in [−300, 0] — 16-bit cells suffice. At L=20000
     the interval reaches −60000, forcing 32-bit. *)
  Alcotest.(check int) "short sequences fit 16-bit" 16 (bits 100);
  Alcotest.(check int) "long sequences need 32-bit" 32 (bits 20_000)

let test_property_symmetry () =
  List.iter
    (fun scheme ->
      Alcotest.(check bool)
        (Scheme.to_string scheme ^ " symmetric")
        true
        (Property.symmetric (Property.analyze scheme)))
    Scheme.builtins

(* ------------------------------------------------------------------ *)
(* Residual cost model                                                 *)
(* ------------------------------------------------------------------ *)

let test_costmodel_exact_counts () =
  let open E in
  (* let t = m[i] + 1 in if t < 0 then −t else t *)
  let e =
    let_ "t"
      (Binop (Add, Read ("m", var "i"), Int 1))
      (if_ (Binop (Lt, var "t", Int 0)) (Neg (var "t")) (var "t"))
  in
  let c = Costmodel.of_expr e in
  Alcotest.(check int) "ops" 3 c.Costmodel.c_ops;
  Alcotest.(check int) "loads" 1 c.Costmodel.c_loads;
  Alcotest.(check int) "stores" 1 c.Costmodel.c_stores;
  Alcotest.(check int) "branches" 1 c.Costmodel.c_branches;
  Alcotest.(check int) "calls" 0 c.Costmodel.c_calls;
  Alcotest.(check int) "nodes = Expr.size" (E.size e) c.Costmodel.c_nodes

let test_costmodel_residuals_straight_line () =
  (* Every residual the runtime executes is provably allocation-free:
     no surviving functions, no call sites. *)
  List.iter
    (fun (scheme, mode) ->
      List.iter
        (fun (name, r) ->
          let what =
            Printf.sprintf "%s/%s/%s" (Scheme.to_string scheme) (mode_name mode) name
          in
          Alcotest.(check bool) (what ^ " straight-line") true (Costmodel.straight_line r);
          check_findings what 0 (Costmodel.check ~name:what r);
          Alcotest.(check int) (what ^ " calls") 0 (Costmodel.of_residual r).Costmodel.c_calls)
        (Staged_kernel.residuals scheme mode))
    matrix

let test_costmodel_planted_call_rejected () =
  let open E in
  (* Hidden allocation: a call site builds an argument environment per
     evaluation, and a surviving residual function may recurse. *)
  let planted =
    {
      Pe.entry = Binop (Add, Call ("helper", [ var "x" ]), Int 1);
      fns = [ { name = "helper"; params = [ "x" ]; filter = Always; body = var "x" } ];
    }
  in
  Alcotest.(check bool) "not straight-line" false (Costmodel.straight_line planted);
  let fs = Costmodel.check ~name:"planted" planted in
  assert_finding "surviving fn" ~pass:"costmodel" ~sub:"residual function helper" fs;
  assert_finding "call site" ~pass:"costmodel" ~sub:"call site" fs;
  (* a call-free entry with no functions passes *)
  check_findings "clean" 0 (Costmodel.check ~name:"clean" (residual (Neg (var "x"))))

let test_staged_kernel_verify_mode () =
  let saved = !Staged_kernel.verify_specializations in
  Staged_kernel.verify_specializations := true;
  Fun.protect
    ~finally:(fun () -> Staged_kernel.verify_specializations := saved)
    (fun () ->
      let kernel = Staged_kernel.specialize Scheme.paper_affine T.Local `Compiled in
      let v = kernel.Staged_kernel.relax_e ~hup:10 ~eup:3 in
      Alcotest.(check int) "verified kernel runs" (max (3 - 1) (10 - 2 - 1)) v)

let () =
  Alcotest.run "analysis"
    [
      ( "typecheck",
        [
          Alcotest.test_case "int vs bool" `Quick test_typecheck_int_bool;
          Alcotest.test_case "inference through inputs" `Quick
            test_typecheck_inference_through_inputs;
          Alcotest.test_case "calls" `Quick test_typecheck_calls;
          Alcotest.test_case "unbound + well-formedness" `Quick
            test_typecheck_unbound_and_wellformedness;
          Alcotest.test_case "generic program clean" `Quick
            test_typecheck_generic_program_clean;
        ] );
      ( "callgraph",
        [
          Alcotest.test_case "sccs" `Quick test_callgraph_sccs;
          Alcotest.test_case "Always cycles flagged" `Quick
            test_termination_flags_always_cycles;
        ] );
      ( "bta",
        [
          Alcotest.test_case "classify" `Quick test_bta_classify;
          Alcotest.test_case "calls and filters" `Quick test_bta_calls;
          Alcotest.test_case "residual completeness check" `Quick test_bta_residual_check;
          Alcotest.test_case "agrees with PE on pow" `Quick test_bta_agrees_with_pe;
        ] );
      ( "lint",
        [
          Alcotest.test_case "configuration dispatch" `Quick test_lint_config_dispatch;
          Alcotest.test_case "configuration call args" `Quick test_lint_config_call;
          Alcotest.test_case "dead lets" `Quick test_lint_dead_let;
          Alcotest.test_case "unregistered arrays" `Quick test_lint_unregistered_array;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "zero findings across scheme x mode matrix" `Quick
            test_matrix_zero_findings;
          Alcotest.test_case "residuals contain no if over configuration" `Quick
            test_residuals_dispatch_free;
          Alcotest.test_case "driver specialize_and_analyze" `Quick
            test_driver_specialize_and_analyze;
          Alcotest.test_case "driver flags Always cycle" `Quick
            test_driver_catches_planted_program;
          Alcotest.test_case "specialize under verify mode" `Quick
            test_staged_kernel_verify_mode;
        ] );
      ( "property",
        [
          Alcotest.test_case "unit-cost certifies" `Quick test_property_unit_cost_certifies;
          Alcotest.test_case "Myers unit_scheme is the builtin" `Quick
            test_property_unit_scheme_is_builtin;
          Alcotest.test_case "scaled unit-cost (2/0/1)" `Quick test_property_scaled_unit_cost;
          Alcotest.test_case "affine open=0 reduces to linear" `Quick
            test_property_affine_open0_reduces;
          Alcotest.test_case "non-unit schemes rejected" `Quick
            test_property_non_unit_schemes_rejected;
          Alcotest.test_case "check refutes forged certificate" `Quick
            test_property_check_refutes_forged_cert;
          Alcotest.test_case "score-bounds cell width" `Quick test_property_score_bounds_width;
          Alcotest.test_case "symmetry across builtins" `Quick test_property_symmetry;
        ] );
      ( "costmodel",
        [
          Alcotest.test_case "exact counts" `Quick test_costmodel_exact_counts;
          Alcotest.test_case "all residuals straight-line" `Quick
            test_costmodel_residuals_straight_line;
          Alcotest.test_case "planted call rejected" `Quick
            test_costmodel_planted_call_rejected;
        ] );
    ]
